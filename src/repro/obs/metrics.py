"""Zero-dependency, thread-safe metrics core for the serving stack.

The paper's evaluation reports wall-clock query time alongside the
filter/verification cost split; at runtime those numbers come from this
module. Three metric types in the classic exposition model:

* :class:`Counter` — monotonically increasing totals (queries served,
  readings ingested, seals performed);
* :class:`Gauge` — point-in-time values, either set explicitly or
  computed lazily at scrape time through :meth:`Gauge.set_function`
  (cache hit rate, ingest lag);
* :class:`Histogram` — fixed-bucket latency distributions with a
  :meth:`Histogram.time` context manager (one monotonic clock read on
  entry, one on exit) and p50/p90/p99 estimates interpolated from the
  bucket counts.

Metrics live in a named :class:`MetricsRegistry`. All three types
support labels (``counter.labels(mode="search").inc()``); label
children are created on first use and cached. Registration is
get-or-create: asking for an existing name with a matching type and
label set returns the existing metric, so independent modules can
instrument themselves against the shared process registry
(:func:`default_registry`) without coordination.

Instrumentation can be turned off wholesale: :data:`NULL_REGISTRY`
implements the same surface with shared no-op metric objects — one
attribute lookup and one call per would-be update, nothing recorded.
``set_default_registry(NULL_REGISTRY)`` disables every library-level
metric in the process; the overhead benchmark
(``benchmarks/bench_obs_overhead.py``) gates the enabled-vs-disabled
difference on the hot query path.

All counters are exact under concurrency: every update takes the
metric's lock (plain ``+=`` on a Python int is a read-modify-write and
can lose updates between threads), which the concurrency tests verify
by hammering from many threads and asserting the exact total.

Examples
--------
>>> registry = MetricsRegistry("demo")
>>> queries = registry.counter("queries_total", "Queries served.",
...                            labels=("mode",))
>>> queries.labels(mode="search").inc()
>>> queries.labels(mode="search").value
1.0
>>> latency = registry.histogram("query_seconds", "Query latency.")
>>> with latency.time():
...     pass
>>> latency.count
1
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any

from ..exceptions import InvalidParameterError

#: Default latency buckets (seconds) — sub-millisecond through tens of
#: seconds, Prometheus-style; the implicit +Inf bucket is always added.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_INF = float("inf")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not name or not all(
        part.isidentifier() for part in name.split(":")
    ):
        raise InvalidParameterError(
            f"metric name must be a non-empty identifier, got {name!r}"
        )
    return name


class _Timer:
    """Class-based timing context manager (cheaper than a generator):
    one ``perf_counter`` read on enter, one on exit."""

    __slots__ = ("_metric", "_started")

    def __init__(self, metric: Any) -> None:
        self._metric = metric

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._metric.observe(time.perf_counter() - self._started)


class _Metric:
    """Shared machinery: identity, labels, child management."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: tuple = ()) -> None:
        self.name = _check_name(name)
        self.help = str(help)
        self.label_names = tuple(str(label) for label in labels)
        self._lock = threading.Lock()
        self._children: dict[tuple, "_Metric"] = {}  # lint: guarded-by(_lock)
        self._init_value()

    def _init_value(self) -> None:  # lint: holds(_lock) constructor helper, object not yet shared
        self._value = 0.0  # lint: guarded-by(_lock)

    # ------------------------------------------------------------------
    def labels(self, **label_values: Any) -> "_Metric":
        """The child metric for one label-value combination (created on
        first use, cached after)."""
        if not self.label_names:
            raise InvalidParameterError(
                f"metric {self.name!r} declares no labels"
            )
        try:
            key = tuple(str(label_values[k]) for k in self.label_names)
        except KeyError as exc:
            raise InvalidParameterError(
                f"metric {self.name!r} requires labels "
                f"{self.label_names}, got {sorted(label_values)}"
            ) from exc
        if len(label_values) != len(self.label_names):
            raise InvalidParameterError(
                f"metric {self.name!r} requires labels "
                f"{self.label_names}, got {sorted(label_values)}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def _new_child(self) -> "_Metric":
        child = object.__new__(type(self))
        child.name = self.name
        child.help = self.help
        child.label_names = ()
        child._copy_config(self)
        child._lock = threading.Lock()
        child._children = {}
        child._init_value()
        return child

    def _copy_config(self, parent: "_Metric") -> None:
        """Copy subtype configuration (e.g. histogram buckets) from the
        parent before ``_init_value`` runs on the child."""

    def _check_leaf(self) -> None:
        if self.label_names:
            raise InvalidParameterError(
                f"metric {self.name!r} is labelled; select a child with "
                f".labels({', '.join(self.label_names)}=...) first"
            )

    def samples(self) -> list[tuple[tuple, "_Metric"]]:
        """``(label_values, leaf)`` pairs in insertion order; a single
        ``((), self)`` pair for unlabelled metrics."""
        if not self.label_names:
            return [((), self)]
        with self._lock:
            return list(self._children.items())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    _value: float  # lint: guarded-by(_lock)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        self._check_leaf()
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A point-in-time value; set directly or computed at read time."""

    kind = "gauge"

    def _init_value(self) -> None:  # lint: holds(_lock) constructor helper, object not yet shared
        self._value = 0.0  # lint: guarded-by(_lock)
        self._function = None  # lint: guarded-by(_lock)

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` (clears any read-time callback)."""
        self._check_leaf()
        with self._lock:
            self._value = float(value)
            self._function = None

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self._check_leaf()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    def set_function(self, function: Any) -> None:
        """Compute the gauge lazily: ``function()`` runs at every read
        (exports observe live state without per-update bookkeeping)."""
        self._check_leaf()
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        # Run callbacks outside the lock; they may read other metrics.
        return float(function())


class Histogram(_Metric):
    """A fixed-bucket distribution with quantile estimates.

    ``buckets`` holds the upper bounds (ascending); an implicit +Inf
    bucket catches everything beyond the last bound. Quantiles are
    estimated by linear interpolation inside the bucket containing the
    target rank — exact enough for dashboard p50/p99 at a fraction of
    the cost of storing observations.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: tuple = (),
        buckets: Any = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ):
            raise InvalidParameterError(
                f"histogram {name!r} buckets must be a non-empty "
                f"ascending sequence, got {buckets!r}"
            )
        self.buckets = bounds
        super().__init__(name, help, labels)

    def _init_value(self) -> None:  # lint: holds(_lock) constructor helper, object not yet shared
        self._counts = [0] * (len(self.buckets) + 1)  # lint: guarded-by(_lock)
        self._sum = 0.0  # lint: guarded-by(_lock)
        self._count = 0  # lint: guarded-by(_lock)

    def _copy_config(self, parent: "_Metric") -> None:
        self.buckets = parent.buckets

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._check_leaf()
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self) -> _Timer:
        """A context manager observing the wrapped block's duration in
        seconds (monotonic clock)."""
        return _Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """A consistent ``(bucket_counts, sum, count)`` triple."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation inside the target bucket; observations in
        the +Inf bucket clamp to the largest finite bound. 0.0 when the
        histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must be in [0, 1], got {q}")
        counts, _, total = self.snapshot()
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = self.buckets[index]
                fraction = (rank - previous) / count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.buckets[-1]

    def percentiles(self) -> dict:
        """The standard dashboard triple (seconds)."""
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A named, thread-safe collection of metrics.

    Registration is get-or-create: :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` return the existing metric when the name is
    already registered with a matching type and label set, and raise
    :class:`~repro.exceptions.InvalidParameterError` on a mismatch —
    two modules can never silently write to each other's metric under
    conflicting schemas.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = str(name)
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}  # lint: guarded-by(_lock)
        # Monotonic origin: ages derived from it survive wall-clock
        # steps (NTP), which would otherwise corrupt every rate that
        # divides by the registry's age.
        self._created = time.perf_counter()

    # ------------------------------------------------------------------
    def _get_or_create(
        self, cls: Any, name: str, help: str, labels: Any, **kwargs: Any
    ) -> _Metric:
        labels = tuple(str(label) for label in labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != labels:
                    raise InvalidParameterError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels "
                        f"{existing.label_names}, cannot re-register as "
                        f"a {cls.kind} with labels {labels}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Any = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Any = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Any = (),
        buckets: Any = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> _Metric | None:
        """The registered metric under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def unregister(self, name: str) -> None:
        """Drop the metric under ``name`` (no-op when absent)."""
        with self._lock:
            self._metrics.pop(name, None)

    def clear(self) -> None:
        """Drop every metric (primarily for tests)."""
        with self._lock:
            self._metrics.clear()

    def collect(self) -> list[_Metric]:
        """Every registered metric, sorted by name (the exporters'
        entry point)."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """A point-in-time, JSON-ready view of every metric.

        Returns ``{name: {"kind": ..., "samples": {label_key: value}}}``
        where ``label_key`` joins the child's label values with ``|``
        (empty for unlabelled metrics). Counter and gauge samples are
        floats; histogram samples are ``{"count", "sum", "buckets"}``
        dicts (bucket counts aligned with the metric-level ``"le"``
        bound list, +Inf last). Each leaf is read under its own lock,
        so every *sample* is internally consistent — a histogram's
        ``sum``/``count``/``buckets`` always describe the same set of
        observations — while cross-metric consistency is not promised.

        Benchmark scenarios use ``snapshot()`` pairs with
        :func:`snapshot_delta` to isolate their own activity on a
        shared registry without resetting anyone else's counters.
        """
        out: dict = {}
        for metric in self.collect():
            entry: dict = {"kind": metric.kind, "samples": {}}
            if metric.kind == "histogram":
                entry["le"] = list(metric.buckets)
            for label_values, leaf in metric.samples():
                key = "|".join(label_values)
                if metric.kind == "histogram":
                    counts, total, count = leaf.snapshot()
                    entry["samples"][key] = {
                        "count": count, "sum": total, "buckets": counts
                    }
                else:
                    entry["samples"][key] = leaf.value
            out[metric.name] = entry
        return out

    @property
    def age_seconds(self) -> float:
        """Seconds since this registry was created (used by exports to
        derive rates such as QPS). Monotonic: immune to wall-clock
        steps."""
        return max(1e-9, time.perf_counter() - self._created)

    def __contains__(self, name: Any) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.name!r}, metrics={len(self)})"


# ----------------------------------------------------------------------
# The no-op registry (instrumentation disabled)
# ----------------------------------------------------------------------
class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_TIMER = _NullTimer()


class _NullMetric:
    """A shared do-nothing metric: every update is one attribute lookup
    and one call, nothing is stored."""

    __slots__ = ()
    kind = "null"
    name = "null"
    help = ""
    label_names = ()
    buckets = DEFAULT_BUCKETS

    def labels(self, **label_values: Any) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, function: Any) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return _NULL_TIMER

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def snapshot(self) -> tuple[list[int], float, int]:
        return [0] * (len(DEFAULT_BUCKETS) + 1), 0.0, 0

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> dict:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0}

    def samples(self) -> list:
        return []


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """A registry whose metrics discard everything (instrumentation
    off). Exports see an empty collection."""

    name = "null"
    age_seconds = 1e-9

    def counter(self, name: str, help: str = "", labels: Any = ()) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "", labels: Any = ()) -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Any = (),
        buckets: Any = DEFAULT_BUCKETS,
    ) -> _NullMetric:
        return _NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def unregister(self, name: str) -> None:
        pass

    def clear(self) -> None:
        pass

    def collect(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {}

    def __contains__(self, name: Any) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The shared disabled registry.
NULL_REGISTRY = NullRegistry()

# ----------------------------------------------------------------------
# Process default registry
# ----------------------------------------------------------------------
_default_lock = threading.Lock()
_default_registry = MetricsRegistry("repro")


def default_registry() -> MetricsRegistry:
    """The process-wide registry library instrumentation writes to."""
    with _default_lock:
        return _default_registry


def set_default_registry(registry: Any) -> MetricsRegistry:
    """Swap the process default registry (pass :data:`NULL_REGISTRY` to
    disable library-level instrumentation); returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


class HandleCache:
    """Lazy, registry-tracking metric handles for module-level
    instrumentation.

    Library modules (planner, sharding, live plane) record into the
    *current* default registry, which tests and benchmarks swap at
    runtime. ``HandleCache(builder)`` calls ``builder(registry)`` once
    per observed registry and returns the cached handles afterwards, so
    the hot path pays one identity check instead of registry lookups.
    The unlocked check is a benign race: rebuilding is idempotent
    because registration is get-or-create.
    """

    __slots__ = ("_builder", "_registry", "_handles")

    def __init__(self, builder: Any) -> None:
        self._builder = builder
        self._registry = None
        self._handles = None

    def __call__(self) -> Any:
        registry = default_registry()
        if registry is not self._registry:
            self._handles = self._builder(registry)
            self._registry = registry
        return self._handles


def resolve_registry(metrics: Any) -> MetricsRegistry:
    """Normalize a ``metrics=`` constructor argument: ``None``/``True``
    → the process default registry, ``False`` → :data:`NULL_REGISTRY`,
    a registry instance → itself."""
    if metrics is None or metrics is True:
        return default_registry()
    if metrics is False:
        return NULL_REGISTRY
    return metrics


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`MetricsRegistry.snapshot` calls.

    Cumulative metrics (counters, histograms) are subtracted sample by
    sample — a sample absent from ``before`` counts from zero, so
    metrics registered mid-interval are attributed in full. Gauges are
    point-in-time by definition and pass through with their ``after``
    value. Metrics absent from ``after`` are dropped (a registry is
    never expected to shrink mid-interval). The result has the same
    shape as the inputs, so it nests inside benchmark artifacts as-is.
    """
    delta: dict = {}
    for name, entry in after.items():
        kind = entry["kind"]
        prior = before.get(name, {})
        prior_samples = prior.get("samples", {}) if prior.get("kind") == kind else {}
        out: dict = {"kind": kind, "samples": {}}
        if "le" in entry:
            out["le"] = list(entry["le"])
        for key, sample in entry["samples"].items():
            if kind == "histogram":
                base = prior_samples.get(
                    key, {"count": 0, "sum": 0.0, "buckets": []}
                )
                base_buckets = list(base["buckets"]) or [0] * len(sample["buckets"])
                out["samples"][key] = {
                    "count": sample["count"] - base["count"],
                    "sum": sample["sum"] - base["sum"],
                    "buckets": [
                        current - previous
                        for current, previous in zip(
                            sample["buckets"], base_buckets
                        )
                    ],
                }
            elif kind == "counter":
                out["samples"][key] = sample - prior_samples.get(key, 0.0)
            else:
                out["samples"][key] = sample
        delta[name] = out
    return delta
