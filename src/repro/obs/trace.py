"""Per-stage query tracing for the unified pipeline.

A :class:`QueryTrace` records named spans — ``prepare → plan →
execute (per shard/segment) → merge → verify`` — each with a start
offset and duration taken from the monotonic clock. Traces are cheap by
construction: starting a span costs one ``perf_counter`` read, closing
it a second; untraced queries pay a single ``None`` check through
:data:`NULL_TRACE`.

The engine owns a :class:`Tracer`, which decides per query whether to
trace (deterministic interval sampling — every ``1/sample`` th query —
so tests and benchmarks are reproducible without a seeded RNG) and
keeps the last N completed traces in a bounded ring buffer.

Propagation uses a :mod:`contextvars` context variable: the engine
activates the trace around plan/execute, and downstream layers (the
planner's prepare stage, sharded fan-out, live segment scans) pick it
up with :func:`current_trace`. ``concurrent.futures`` worker threads do
**not** inherit context variables, so fan-out call sites capture the
trace object in the closure they submit — see
:meth:`ShardedTSIndex.search <repro.engine.sharding.ShardedTSIndex>`.
Member queries of a ``batch`` fan-out run entirely on pool threads and
are not traced individually; the batch itself gets one trace.

Examples
--------
>>> tracer = Tracer(capacity=4, sample=1.0)
>>> trace = tracer.start("search", index="demo")
>>> with trace.span("plan"):
...     pass
>>> tracer.finish(trace)
>>> tracer.traces()[-1].spans[0].name
'plan'
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from typing import Any

from ..exceptions import InvalidParameterError

#: Default number of completed traces retained by a :class:`Tracer`.
DEFAULT_TRACE_CAPACITY = 64


class Span:
    """One named, timed stage inside a trace."""

    __slots__ = ("name", "start", "duration", "meta")

    def __init__(self, name: str, start: float, meta: dict | None = None) -> None:
        self.name = name
        self.start = start
        self.duration = 0.0
        self.meta = meta

    def as_dict(self) -> dict:
        data = {
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
        }
        if self.meta:
            data["meta"] = dict(self.meta)
        return data

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration_s={self.duration:.6f})"


class _SpanTimer:
    """Context manager closing a span on exit (class-based: cheaper
    than a generator-backed contextmanager)."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "QueryTrace", span: Span) -> None:
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._trace._close(self._span)


class QueryTrace:
    """All spans recorded for one traced query.

    Span offsets are relative to the trace's own start, so
    :meth:`as_dict` output is stable across runs of equal shape.
    Thread-safe: fan-out workers append shard spans concurrently.
    """

    __slots__ = ("mode", "meta", "started", "duration", "_origin",
                 "spans", "_lock")

    def __init__(self, mode: str, **meta: Any) -> None:
        self.mode = mode
        self.meta = meta
        self.started = time.time()  # lint: disable=wall-clock epoch timestamp; spans use _origin below
        self.duration = 0.0
        self._origin = time.perf_counter()
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    def span(self, name: str, **meta: Any) -> _SpanTimer:
        """Open a named span; close it by exiting the returned context
        manager."""
        span = Span(
            name, time.perf_counter() - self._origin, meta or None
        )
        return _SpanTimer(self, span)

    def _close(self, span: Span) -> None:
        span.duration = (
            time.perf_counter() - self._origin - span.start
        )
        with self._lock:
            self.spans.append(span)

    def finish(self) -> None:
        self.duration = time.perf_counter() - self._origin

    def as_dict(self) -> dict:
        """A JSON-ready snapshot (consumed by the CLI and tests)."""
        with self._lock:
            spans = [span.as_dict() for span in self.spans]
        data = {
            "mode": self.mode,
            "started_unix": self.started,
            "duration_s": self.duration,
            "spans": spans,
        }
        if self.meta:
            data["meta"] = dict(self.meta)
        return data

    def __repr__(self) -> str:
        return (
            f"QueryTrace(mode={self.mode!r}, spans={len(self.spans)}, "
            f"duration_s={self.duration:.6f})"
        )


class _NullSpanTimer:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN_TIMER = _NullSpanTimer()


class NullTrace:
    """The do-nothing trace handed out for unsampled queries: spans
    cost one call and no clock reads."""

    __slots__ = ()
    mode = None
    meta: dict = {}
    started = 0.0
    duration = 0.0
    spans: list = []

    def span(self, name: str, **meta: Any) -> _NullSpanTimer:
        return _NULL_SPAN_TIMER

    def finish(self) -> None:
        pass

    def as_dict(self) -> dict:
        return {"mode": None, "started_unix": 0.0, "duration_s": 0.0,
                "spans": []}

    def __bool__(self) -> bool:
        # Lets call sites guard optional work with ``if trace:``.
        return False

    def __repr__(self) -> str:
        return "NullTrace()"


#: The shared disabled trace.
NULL_TRACE = NullTrace()

# ----------------------------------------------------------------------
# Context propagation
# ----------------------------------------------------------------------
_current: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace", default=NULL_TRACE
)


def current_trace() -> Any:
    """The trace active in this execution context (:data:`NULL_TRACE`
    when none is). Worker threads of an executor pool do not inherit
    it — capture the trace in the submitted closure instead."""
    return _current.get()


def activate_trace(trace: Any) -> contextvars.Token:
    """Make ``trace`` the current trace; pass the returned token to
    :func:`deactivate_trace` to restore the previous one."""
    return _current.set(trace)


def deactivate_trace(token: contextvars.Token) -> None:
    """Restore the trace that was current before ``token``'s
    activation."""
    _current.reset(token)


class Tracer:
    """Sampling policy plus a bounded ring buffer of completed traces.

    ``sample`` is the fraction of queries traced: 1.0 traces every
    query, 0.0 disables tracing, 0.1 traces every 10th. Sampling is
    interval-based (a counter, not randomness) so behaviour is
    deterministic.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        sample: float = 1.0,
    ) -> None:
        capacity = int(capacity)
        if capacity < 1:
            raise InvalidParameterError(
                f"trace capacity must be >= 1, got {capacity}"
            )
        if not 0.0 <= sample <= 1.0:
            raise InvalidParameterError(
                f"trace sample rate must be in [0, 1], got {sample}"
            )
        self.capacity = capacity
        self.sample = float(sample)
        self._interval = int(round(1.0 / sample)) if sample > 0 else 0
        self._seen = 0
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def start(self, mode: str, **meta: Any) -> Any:
        """A new :class:`QueryTrace` when this query is sampled, else
        :data:`NULL_TRACE`."""
        if self._interval == 0:
            return NULL_TRACE
        with self._lock:
            self._seen += 1
            sampled = self._seen % self._interval == 0
        if not sampled:
            return NULL_TRACE
        return QueryTrace(mode, **meta)

    def finish(self, trace: Any) -> None:
        """Close ``trace`` and retain it (no-op for the null trace)."""
        if trace is NULL_TRACE or trace is None:
            return
        trace.finish()
        with self._lock:
            self._ring.append(trace)

    def traces(self) -> list:
        """The retained traces, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"Tracer(capacity={self.capacity}, sample={self.sample}, "
            f"retained={len(self)})"
        )
