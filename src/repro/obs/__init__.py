"""``repro.obs`` — zero-dependency observability for the serving stack.

Three pieces, all stdlib-only:

* :mod:`repro.obs.metrics` — thread-safe :class:`Counter`,
  :class:`Gauge`, and fixed-bucket :class:`Histogram` in a named
  :class:`MetricsRegistry`, with a process default registry and a
  :data:`NULL_REGISTRY` that turns all instrumentation into no-ops;
* :mod:`repro.obs.export` — Prometheus text exposition
  (:func:`to_prometheus`) and a stable JSON snapshot
  (:func:`to_json` / :func:`json_snapshot`);
* :mod:`repro.obs.trace` — per-stage query spans
  (``prepare → plan → execute → merge → verify``) with interval
  sampling and a bounded ring buffer of recent traces.

Plus :func:`configure_logging` for the library's structured
:mod:`logging` events (silent by default via ``NullHandler``).

Quickstart
----------
>>> from repro.obs import default_registry, to_prometheus
>>> registry = default_registry()
>>> registry.counter("demo_total", "Demo events.").inc()
>>> print(to_prometheus(registry))  # doctest: +SKIP
# HELP demo_total Demo events.
# TYPE demo_total counter
demo_total 1
"""

from .export import json_snapshot, to_json, to_prometheus
from .logsetup import configure_logging, get_logger, install_null_handler
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    resolve_registry,
    set_default_registry,
    snapshot_delta,
)
from .trace import (
    DEFAULT_TRACE_CAPACITY,
    NULL_TRACE,
    NullTrace,
    QueryTrace,
    Span,
    Tracer,
    activate_trace,
    current_trace,
    deactivate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_default_registry",
    "resolve_registry",
    "snapshot_delta",
    "to_prometheus",
    "to_json",
    "json_snapshot",
    "QueryTrace",
    "Span",
    "Tracer",
    "NullTrace",
    "NULL_TRACE",
    "DEFAULT_TRACE_CAPACITY",
    "current_trace",
    "activate_trace",
    "deactivate_trace",
    "configure_logging",
    "get_logger",
    "install_null_handler",
]
