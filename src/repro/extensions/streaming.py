"""Streaming twin search — **deprecated shim** over :mod:`repro.live`.

This module predates the live ingestion plane: it wrapped a single
mutable TS-Index over a growable buffer, raw values only, with no
durability and no way to keep queries fast as the series grew.
:class:`repro.live.LiveTwinIndex` supersedes it — durable appends,
sealed frozen segments, background compaction, engine serving — and
:class:`StreamingTwinIndex` is now a thin compatibility wrapper over a
never-sealing live plane (so :attr:`StreamingTwinIndex.index` remains
one TS-Index over everything appended, exactly as before).

Two behavioural changes from the original module, both strict widenings:

* the **per-window** normalization regime is supported (it is
  append-safe: each window is scaled by its own statistics, and the
  library's rolling statistics are prefix-stable under appends — see
  :func:`~repro.core.normalization.rolling_std`); only global
  z-normalization stays rejected;
* constructing one emits a :class:`DeprecationWarning` pointing at
  :class:`~repro.live.LiveTwinIndex`.
"""

from __future__ import annotations

import warnings

import numpy as np

from .._util import as_float_array, check_positive_int
from ..core.normalization import Normalization
from ..core.tsindex import TSIndex, TSIndexParams
from ..exceptions import InvalidParameterError
from ..live import LiveTwinIndex


class StreamingTwinIndex:
    """A TS-Index over a series that can grow by appending readings.

    .. deprecated::
        Use :class:`repro.live.LiveTwinIndex`, which adds durability
        (write-ahead log + recovery), sealed frozen segments and
        background compaction. This shim keeps the original surface
        working on top of a never-sealing live plane.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.extensions.streaming import StreamingTwinIndex
    >>> stream = StreamingTwinIndex(np.zeros(32), length=16)
    >>> stream.append(np.ones(8))
    8
    >>> stream.window_count
    25
    >>> bool(stream.exists(np.zeros(16), epsilon=0.0))
    True
    """

    def __init__(
        self,
        initial_values,
        length: int,
        *,
        params: TSIndexParams | None = None,
        normalization=Normalization.NONE,
    ):
        warnings.warn(
            "StreamingTwinIndex is deprecated; use repro.live.LiveTwinIndex "
            "(durable appends, sealed segments, engine serving)",
            DeprecationWarning,
            stacklevel=2,
        )
        values = as_float_array(initial_values, name="initial_values")
        length = check_positive_int(length, name="length")
        if length > values.size:
            raise InvalidParameterError(
                f"need at least {length} initial values, got {values.size}"
            )
        # seal_threshold=None: the delta never seals, so the plane stays
        # a single mutable TS-Index — the original module's shape.
        self._live = LiveTwinIndex(
            values,
            length,
            normalization=normalization,
            params=params,
            seal_threshold=None,
        )

    # ------------------------------------------------------------------
    @property
    def series_length(self) -> int:
        """Number of readings appended so far."""
        return self._live.series_length

    @property
    def window_count(self) -> int:
        """Number of indexed windows (``series_length - length + 1``)."""
        return self._live.window_count

    @property
    def index(self) -> TSIndex:
        """The wrapped TS-Index (read-only use)."""
        return self._live.delta

    @property
    def live(self) -> LiveTwinIndex:
        """The backing live plane (migration escape hatch)."""
        return self._live

    @property
    def values(self) -> np.ndarray:
        """The series so far (a read-only view)."""
        return self._live.values

    def __repr__(self) -> str:
        return (
            f"StreamingTwinIndex(readings={self.series_length}, "
            f"windows={self.window_count}, length={self._live.length})"
        )

    # ------------------------------------------------------------------
    def append(self, readings) -> int:
        """Append one reading or a batch; returns new windows indexed."""
        return self._live.append(readings)

    # ------------------------------------------------------------------
    def search(self, query, epsilon: float, **kwargs):
        """Twin search over everything appended so far."""
        return self._live.search(query, epsilon, **kwargs)

    def knn(self, query, k: int, **kwargs):
        """k nearest windows over everything appended so far."""
        return self._live.knn(query, k, **kwargs)

    def exists(self, query, epsilon: float) -> bool:
        """Whether the pattern has occurred anywhere so far."""
        return self._live.exists(query, epsilon)
