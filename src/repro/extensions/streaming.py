"""Streaming twin search: an appendable TS-Index (extension).

The paper builds its indices over a static series. Monitoring
applications (the intro's traffic/EEG scenarios) want to *extend* the
series as readings arrive and query at any point. This module wraps a
TS-Index over a growable buffer:

* ``append`` adds readings, amortized O(1) buffer growth plus one
  index insertion per newly completed window;
* ``search`` / ``knn`` / ``exists`` delegate to the wrapped index.

Only the raw-value regime is supported: global z-normalization is
undefined while the series keeps growing (the normalization constants
would shift under every existing window), and per-window normalization
of streaming windows is possible but deliberately out of scope here.
"""

from __future__ import annotations

import numpy as np

from .._util import FLOAT_DTYPE, as_float_array, check_positive_int
from ..core.normalization import Normalization
from ..core.tsindex import TSIndex, TSIndexParams
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError


class StreamingTwinIndex:
    """A TS-Index over a series that can grow by appending readings.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.extensions.streaming import StreamingTwinIndex
    >>> stream = StreamingTwinIndex(np.zeros(32), length=16)
    >>> stream.append(np.ones(8))
    8
    >>> stream.window_count
    25
    >>> bool(stream.exists(np.zeros(16), epsilon=0.0))
    True
    """

    def __init__(self, initial_values, length: int, *, params: TSIndexParams | None = None):
        values = as_float_array(initial_values, name="initial_values")
        length = check_positive_int(length, name="length")
        if length > values.size:
            raise InvalidParameterError(
                f"need at least {length} initial values, got {values.size}"
            )
        self._length = length
        self._params = params or TSIndexParams()
        self._capacity = max(values.size * 2, 1024)
        self._buffer = np.empty(self._capacity, dtype=FLOAT_DTYPE)
        self._buffer[: values.size] = values
        self._size = values.size
        self._index = TSIndex.from_source(
            self._make_source(), params=self._params
        )

    # ------------------------------------------------------------------
    @property
    def series_length(self) -> int:
        """Number of readings appended so far."""
        return self._size

    @property
    def window_count(self) -> int:
        """Number of indexed windows (``series_length - length + 1``)."""
        return self._size - self._length + 1

    @property
    def index(self) -> TSIndex:
        """The wrapped TS-Index (read-only use)."""
        return self._index

    @property
    def values(self) -> np.ndarray:
        """The series so far (a read-only view)."""
        view = self._buffer[: self._size]
        view.setflags(write=False)
        return view

    def __repr__(self) -> str:
        return (
            f"StreamingTwinIndex(readings={self._size}, "
            f"windows={self.window_count}, length={self._length})"
        )

    # ------------------------------------------------------------------
    def append(self, readings) -> int:
        """Append one reading or a batch; returns new windows indexed."""
        readings = np.atleast_1d(np.asarray(readings, dtype=FLOAT_DTYPE))
        if readings.ndim != 1 or readings.size == 0:
            raise InvalidParameterError("readings must be a non-empty 1-D batch")
        if not np.all(np.isfinite(readings)):
            raise InvalidParameterError("readings contain NaN or infinity")

        previous_windows = self.window_count
        needed = self._size + readings.size
        if needed > self._capacity:
            while self._capacity < needed:
                self._capacity *= 2
            grown = np.empty(self._capacity, dtype=FLOAT_DTYPE)
            grown[: self._size] = self._buffer[: self._size]
            self._buffer = grown
        self._buffer[self._size : needed] = readings
        self._size = needed

        # The index must see the extended buffer before inserting the
        # newly completed windows. Existing window contents (and hence
        # every stored MBTS) are unchanged: the regime is raw values.
        self._index._source = self._make_source()
        new_windows = self.window_count
        for position in range(previous_windows, new_windows):
            self._index._insert_position(position)
        self._index._build_stats.windows = new_windows
        return new_windows - previous_windows

    def _make_source(self) -> WindowSource:
        # Zero-copy alias of the live buffer: appends only ever write
        # past ``self._size``, so the aliased region is stable.
        from ..core.series import TimeSeries

        series = TimeSeries(self._buffer[: self._size], copy=False)
        return WindowSource(series, self._length, Normalization.NONE)

    # ------------------------------------------------------------------
    def search(self, query, epsilon: float, **kwargs):
        """Twin search over everything appended so far."""
        return self._index.search(query, epsilon, **kwargs)

    def knn(self, query, k: int, **kwargs):
        """k nearest windows over everything appended so far."""
        return self._index.knn(query, k, **kwargs)

    def exists(self, query, epsilon: float) -> bool:
        """Whether the pattern has occurred anywhere so far."""
        return self._index.exists(query, epsilon)
