"""Twin pair discovery (extension; the paper's reference [5] problem).

Given a *collection* of time-aligned series, find all pairs of series
whose time-aligned subsequences of length ``l`` starting at the same
timestamp are twins w.r.t. ``ε`` — a sweepline over timestamps keeping,
for each pair, the running count of consecutive in-threshold positions.

Also provided: :func:`self_twin_pairs`, which discovers twin pairs of
*non-overlapping* subsequences inside one series via a TS-Index self
join (index every window, then query the index with each window and
keep matches that start at least ``l`` apart — the Chebyshev analogue
of motif discovery under a trivial-match exclusion zone).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .._util import check_non_negative, check_positive_int
from ..core.normalization import Normalization
from ..core.tsindex import TSIndex
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError


@dataclasses.dataclass(frozen=True)
class PairResult:
    """One discovered twin pair.

    For cross-series discovery, ``first``/``second`` are series indices
    and ``position`` the shared start timestamp. For self joins they are
    the two window start positions and ``position`` equals ``first``.
    """

    first: int
    second: int
    position: int
    distance: float


def discover_twin_pairs(
    collection, length: int, epsilon: float
) -> list[PairResult]:
    """All time-aligned twin subsequence pairs across a collection.

    ``collection`` is a sequence of equal-length 1-D series. For every
    series pair ``(i, j)`` and every start ``p``, reports a result when
    ``max_{0<=t<l} |A[p+t] - B[p+t]| <= ε``. Runs as a sweepline over
    the pairwise absolute-difference series using a sliding-window
    maximum (O(n) per pair via the monotone deque trick).
    """
    length = check_positive_int(length, name="length")
    epsilon = check_non_negative(epsilon, name="epsilon")
    matrices = [np.asarray(series, dtype=float) for series in collection]
    if len(matrices) < 2:
        raise InvalidParameterError("need at least two series")
    n = matrices[0].size
    if any(series.ndim != 1 or series.size != n for series in matrices):
        raise InvalidParameterError("all series must be 1-D with equal length")
    if length > n:
        raise InvalidParameterError(
            f"length={length} exceeds the series length {n}"
        )

    results: list[PairResult] = []
    for i in range(len(matrices)):
        for j in range(i + 1, len(matrices)):
            differences = np.abs(matrices[i] - matrices[j])
            maxima = sliding_max(differences, length)
            for position in np.flatnonzero(maxima <= epsilon):
                results.append(
                    PairResult(
                        first=i,
                        second=j,
                        position=int(position),
                        distance=float(maxima[position]),
                    )
                )
    return results


def sliding_max(values, length: int) -> np.ndarray:
    """Maximum of every ``length``-sized window, O(n) monotone deque."""
    values = np.asarray(values, dtype=float)
    length = check_positive_int(length, name="length")
    if values.ndim != 1 or length > values.size:
        raise InvalidParameterError(
            f"need a 1-D array with at least {length} points"
        )
    from collections import deque

    out = np.empty(values.size - length + 1, dtype=float)
    window: deque[int] = deque()
    for i, value in enumerate(values):
        while window and values[window[-1]] <= value:
            window.pop()
        window.append(i)
        if window[0] <= i - length:
            window.popleft()
        if i >= length - 1:
            out[i - length + 1] = values[window[0]]
    return out


def self_twin_pairs(
    series,
    length: int,
    epsilon: float,
    *,
    normalization=Normalization.GLOBAL,
    index: TSIndex | None = None,
    limit: int | None = None,
) -> list[PairResult]:
    """Non-overlapping twin pairs inside one series via TS-Index self join.

    For every window ``p`` the index is queried at ``ε``; matches ``q``
    with ``q > p + length - 1`` (no trivial overlap) produce pairs. With
    ``limit`` the scan stops after that many pairs (useful on long
    series). An existing index over the same source may be supplied.
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    if index is None:
        source = WindowSource(series, length, normalization)
        index = TSIndex.from_source(source)
    else:
        source = index.source
        if source.length != length:
            raise InvalidParameterError(
                f"index window length {source.length} != requested {length}"
            )

    results: list[PairResult] = []
    for position in range(source.count):
        matches = index.search(source.window(position), epsilon)
        for other, distance in zip(
            matches.positions.tolist(), matches.distances.tolist()
        ):
            if other >= position + length:
                results.append(
                    PairResult(
                        first=position,
                        second=int(other),
                        position=position,
                        distance=float(distance),
                    )
                )
                if limit is not None and len(results) >= limit:
                    return results
    return results
