"""Extensions beyond the paper's core scope.

* :mod:`repro.extensions.pairs` — twin *pair* discovery across a
  collection of time-aligned series, the problem of the authors' earlier
  SSTD'19 work the paper builds on (Section 2, reference [5]);
* :mod:`repro.extensions.varlength` — deprecated shim over the unified
  query plane's variable-length capability (every plane now serves
  queries of any length ``m <= l`` through :mod:`repro.query`);
* :mod:`repro.extensions.profile` — exact Chebyshev matrix profile,
  motifs and discords via exclusion-zone 1-NN self joins;
* :mod:`repro.extensions.streaming` — deprecated shim over the live
  ingestion plane (:mod:`repro.live`), kept for compatibility.
"""

from .pairs import PairResult, discover_twin_pairs, self_twin_pairs
from .profile import ChebyshevProfile, chebyshev_matrix_profile
from .streaming import StreamingTwinIndex
from .varlength import search_variable_length

__all__ = [
    "ChebyshevProfile",
    "PairResult",
    "StreamingTwinIndex",
    "chebyshev_matrix_profile",
    "discover_twin_pairs",
    "search_variable_length",
    "self_twin_pairs",
]
