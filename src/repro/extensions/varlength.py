"""Variable-length twin queries — **deprecated shim** over the unified
query plane.

This module predates variable length being a first-class capability: it
walked the dynamic TS-Index's private pointer tree (``index._root``), so
the frozen, sharded and live planes — and the planner, engine cache and
CLI — could not serve a query of length ``m < l`` at all (a
``FrozenTSIndex`` died with a raw ``AttributeError``). The capability
now lives in :mod:`repro.query`: ``QuerySpec.prepare`` accepts any
``m <= l``, the planner dispatches to native prefix kernels
(``search_varlength`` on the tree, frozen, sharded and live planes) or
synthesizes a prefix scan for search-only baselines, and verification
routes through the library's block-bounded machinery instead of a
one-shot candidate matrix.

:func:`search_variable_length` is kept as a thin compatibility wrapper
(à la :mod:`repro.extensions.streaming`): it emits a
:class:`DeprecationWarning` and dispatches through the pipeline, so it
now works on *every* plane and raises the library's typed errors
(:class:`~repro.exceptions.IncompatibleQueryError` for ``m > l``,
:class:`~repro.exceptions.UnsupportedNormalizationError` for shorter
queries under the per-window regime, and
:class:`~repro.exceptions.UnsupportedCapabilityError` for targets that
are not query planes) instead of poking ``_root``.
"""

from __future__ import annotations

import warnings

from ..core.stats import SearchResult


def search_variable_length(index, query, epsilon: float) -> SearchResult:
    """All twins of a query of length ``m <= l`` over any query plane.

    .. deprecated::
        Use the unified query plane: ``index.search_varlength(query,
        epsilon)``, a :class:`~repro.query.QuerySpec` through
        :func:`repro.query.execute`, or
        :meth:`QueryEngine.query <repro.engine.executor.QueryEngine.query>`
        (every plane accepts any ``m <= l`` there). This shim dispatches
        through that pipeline.
    """
    warnings.warn(
        "search_variable_length is deprecated; variable-length queries "
        "are served by the unified query plane (index.search_varlength, "
        "QuerySpec/execute, or QueryEngine.query)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..query import QuerySpec, execute

    return execute(
        index, QuerySpec(query=query, mode="search", epsilon=epsilon)
    )
