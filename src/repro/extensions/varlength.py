"""Variable-length twin queries over a fixed-length TS-Index (extension).

The paper's related work cites ULISSE (Linardi & Palpanas, VLDBJ'20)
for "queries of varying length". This module brings the capability to
TS-Index for query lengths ``m <= l`` (the indexed window length),
using a property that is immediate for Chebyshev distance: any
time-aligned *prefix* of two twins is itself a pair of twins
(Section 3.1's second observation). Hence:

* a node's MBTS restricted to its first ``m`` timestamps is a valid
  envelope for the ``m``-prefixes of every window under the node, so
  the Eq. 2 bound over the prefix prunes losslessly;
* verification compares the query against the ``m``-prefix of each
  candidate window.

Positions in the series tail (the last ``l - m`` window starts that
have no full ``l``-window and therefore are absent from the index) are
covered by a direct scan — at most ``l - m`` extra verifications.

Per-window z-normalization is rejected: the index normalizes each
window over ``l`` points, which is not comparable with a query
normalized over ``m`` points. Raw and globally-normalized regimes are
exact.
"""

from __future__ import annotations

import numpy as np

from .._util import POSITION_DTYPE, as_float_array, check_non_negative
from ..core.normalization import Normalization
from ..core.stats import QueryStats, SearchResult
from ..core.tsindex import TSIndex
from ..exceptions import (
    InvalidParameterError,
    UnsupportedNormalizationError,
)


def search_variable_length(
    index: TSIndex, query, epsilon: float
) -> SearchResult:
    """All twins of a query of length ``m <= l`` over a TS-Index.

    Returns every position ``p`` in ``[0, n - m]`` such that
    ``max_i |T[p + i] - Q_i| <= ε`` for ``i < m`` — including tail
    positions the fixed-length index does not store. The query must be
    expressed in the index's value domain (for the GLOBAL regime, in
    globally z-normalized units — e.g. a slice of ``index.source.values``).
    """
    query = as_float_array(query, name="query")
    epsilon = check_non_negative(epsilon, name="epsilon")
    source = index.source
    if source.normalization is Normalization.PER_WINDOW:
        raise UnsupportedNormalizationError(
            "variable-length queries are undefined under per-window "
            "z-normalization: indexed windows are normalized over l "
            "points, a shorter query over m points"
        )
    m = query.size
    length = source.length
    if m > length:
        raise InvalidParameterError(
            f"query length {m} exceeds the indexed window length {length}"
        )

    stats = QueryStats()
    candidates = _collect_prefix_candidates(index, query, epsilon, stats)
    values = source.values

    # Tail positions (window starts beyond the last indexed l-window)
    # are appended as additional candidates: at most l - m of them.
    tail = np.arange(source.count, values.size - m + 1, dtype=POSITION_DTYPE)
    positions = np.concatenate(
        (np.asarray(sorted(candidates), dtype=POSITION_DTYPE), tail)
    )
    stats.candidates += int(positions.size)
    stats.verified += int(positions.size)
    if positions.size == 0:
        return SearchResult.empty(stats)

    view = np.lib.stride_tricks.sliding_window_view(values, m)
    profile = np.max(np.abs(view[positions] - query), axis=1)
    keep = profile <= epsilon
    stats.matches = int(np.count_nonzero(keep))
    return SearchResult(
        positions=positions[keep], distances=profile[keep], stats=stats
    )


def _collect_prefix_candidates(
    index: TSIndex, query: np.ndarray, epsilon: float, stats: QueryStats
) -> list[int]:
    """Algorithm 1's traversal with the Eq. 2 bound restricted to the
    query's prefix length."""
    root = index._root
    if root is None:
        return []
    m = query.size

    def prefix_distance(node) -> float:
        upper = node.mbts.upper[:m]
        lower = node.mbts.lower[:m]
        above = query - upper
        below = lower - query
        return float(max(above.max(), below.max(), 0.0))

    collected: list[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        stats.nodes_visited += 1
        if prefix_distance(node) > epsilon:
            stats.nodes_pruned += 1
            continue
        if node.is_leaf:
            stats.leaves_accessed += 1
            collected.extend(node.positions)
        else:
            stack.extend(node.children)
    return collected
