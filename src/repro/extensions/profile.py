"""Chebyshev matrix profile, motifs and discords (extension).

The paper's introduction motivates twin search with applications like
"detecting irregular patterns in medical sequences"; the Matrix Profile
line of work (cited in Section 2) packages exactly that as two derived
artifacts:

* the **profile**: for every window, the distance to its nearest
  non-trivially-overlapping neighbour;
* **motifs**: the profile's minima (the most repeated pattern);
* **discords**: the profile's maxima (the least repeatable pattern —
  anomalies).

Matrix Profile computes these under Euclidean distance with FFT tricks
that do not transfer to Chebyshev (as the paper notes about the UCR
suite); here the profile is computed exactly with one TS-Index 1-NN
query per window, using the exclusion-zone k-NN of
:meth:`repro.core.tsindex.TSIndex.knn`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .._util import check_positive_int
from ..core.normalization import Normalization
from ..core.tsindex import TSIndex
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError


@dataclasses.dataclass
class ChebyshevProfile:
    """The Chebyshev matrix profile of one series.

    ``distances[p]`` is the Chebyshev distance from window ``p`` to its
    nearest neighbour outside the exclusion zone; ``neighbors[p]`` is
    that neighbour's start position.
    """

    distances: np.ndarray
    neighbors: np.ndarray
    length: int
    exclusion: int

    def __len__(self) -> int:
        return int(self.distances.size)

    def motif(self) -> tuple[int, int, float]:
        """The best-repeated pair: ``(position, neighbor, distance)``."""
        position = int(np.argmin(self.distances))
        return position, int(self.neighbors[position]), float(
            self.distances[position]
        )

    def discords(self, count: int = 1) -> list[tuple[int, float]]:
        """The ``count`` most anomalous windows, non-overlapping.

        Sorted by decreasing profile distance; subsequent discords must
        not overlap already-selected ones (standard discord semantics).
        """
        count = check_positive_int(count, name="count")
        order = np.argsort(-self.distances)
        selected: list[tuple[int, float]] = []
        for position in order:
            position = int(position)
            if all(
                abs(position - chosen) >= self.length
                for chosen, _ in selected
            ):
                selected.append((position, float(self.distances[position])))
                if len(selected) == count:
                    break
        return selected


def chebyshev_matrix_profile(
    series,
    length: int,
    *,
    normalization=Normalization.PER_WINDOW,
    exclusion: int | None = None,
    index: TSIndex | None = None,
) -> ChebyshevProfile:
    """Exact Chebyshev matrix profile via TS-Index 1-NN self joins.

    ``exclusion`` defaults to ``length // 2`` positions on each side
    (the Matrix Profile convention for suppressing trivial matches).
    An existing index over the same series/length may be reused.
    """
    if index is None:
        source = WindowSource(series, length, normalization)
        index = TSIndex.from_source(source)
    else:
        source = index.source
        if source.length != length:
            raise InvalidParameterError(
                f"index window length {source.length} != requested {length}"
            )
    if exclusion is None:
        exclusion = max(1, length // 2)
    if source.count <= 2 * exclusion:
        raise InvalidParameterError(
            f"series too short: {source.count} windows with exclusion "
            f"{exclusion} leaves some windows without any valid neighbour"
        )

    count = source.count
    distances = np.empty(count, dtype=float)
    neighbors = np.empty(count, dtype=np.int64)
    for position in range(count):
        window = source.window(position)
        zone = (max(0, position - exclusion), min(count, position + exclusion + 1))
        nearest = index.knn(window, 1, exclude=zone)
        distances[position] = float(nearest.distances[0])
        neighbors[position] = int(nearest.positions[0])
    return ChebyshevProfile(
        distances=distances,
        neighbors=neighbors,
        length=length,
        exclusion=exclusion,
    )
