"""Exception hierarchy for the twin subsequence search library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class. Errors raised for invalid user input derive from
the standard :class:`ValueError` as well, following the principle of least
surprise for NumPy-centric code.
"""

from __future__ import annotations

import contextlib

__all__ = [
    "IncompatibleQueryError",
    "IndexNotBuiltError",
    "InvalidParameterError",
    "ReproError",
    "SerializationError",
    "ShardTimeoutError",
    "SimulatedCrashError",
    "StorageError",
    "UnsupportedCapabilityError",
    "UnsupportedNormalizationError",
    "wrap_os_errors",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter value is outside its valid domain."""


class IncompatibleQueryError(ReproError, ValueError):
    """A query is incompatible with the index it is issued against.

    Typical causes: the query length differs from the indexed window
    length, or the query was prepared under a different normalization
    regime than the index.
    """

    def __init__(self, message: str, *, expected=None, received=None):
        if expected is not None or received is not None:
            message = f"{message} (expected={expected!r}, received={received!r})"
        super().__init__(message)
        self.expected = expected
        self.received = received


class IndexNotBuiltError(ReproError, RuntimeError):
    """An operation requiring a built index was invoked before building."""


class UnsupportedCapabilityError(ReproError, TypeError):
    """A query was planned against an object that cannot serve it.

    Raised by the query planner when the target is not a servable plane
    (no ``search`` kernel / no window source to synthesize from) — the
    typed replacement for the raw ``AttributeError`` that used to leak
    out of capability-shaped holes such as variable-length search on a
    non-tree plane.
    """


class UnsupportedNormalizationError(ReproError, ValueError):
    """The requested normalization regime is unsupported by this method.

    The canonical case from the paper (Section 4.1): KV-Index cannot be
    built over per-subsequence z-normalized windows because every window
    mean collapses to zero, destroying the filter.
    """


class StorageError(ReproError):
    """A durability operation (WAL, segment archive, manifest) failed.

    The typed wrapper for every ``OSError``/``IOError`` that would
    otherwise escape raw from the storage layer — disk full, permission
    denied, torn writes surfacing as short reads. The original OS error
    is preserved as ``__cause__`` so ``errno`` stays inspectable.
    """


class SerializationError(StorageError):
    """An index could not be saved to or restored from disk."""


class ShardTimeoutError(ReproError, TimeoutError):
    """A fan-out query hit its per-shard deadline before every part
    answered.

    The fail-fast default for ``timeout=``-bounded queries. ``answered``
    and ``missing`` name exactly which parts completed and which did
    not, so callers can decide whether to retry, widen the deadline, or
    re-issue in degraded mode.
    """

    def __init__(self, message: str, *, answered=(), missing=()):
        super().__init__(message)
        self.answered = tuple(answered)
        self.missing = tuple(missing)


class SimulatedCrashError(BaseException):
    """A fault-injection crash: the process is assumed dead past this point.

    Raised by an armed ``crash``/torn-write failpoint
    (:mod:`repro.faults`). It deliberately derives from
    :class:`BaseException` — not :class:`ReproError`, not even
    :class:`Exception` — so no retry loop, quarantine path, or broad
    ``except Exception`` handler in the library can swallow it: a real
    ``kill -9`` runs no handlers, and neither does this.
    """


@contextlib.contextmanager
def wrap_os_errors(operation: str, path):
    """Re-raise any ``OSError`` escaping the block as a typed
    :class:`StorageError` naming the operation and path.

    Library-typed errors (including :class:`SerializationError`, which
    is *not* an ``OSError``) pass through untouched.
    """
    try:
        yield
    except ReproError:
        raise
    except OSError as exc:
        raise StorageError(f"{operation} failed for {str(path)!r}: {exc}") from exc
