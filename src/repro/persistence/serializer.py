"""Save/load support for every index (extension).

The paper keeps indices in memory; real deployments want to build once
and reuse. Two on-disk containers share one logical payload (the raw
series, the construction parameters and the method-specific structure,
flattened with explicit child offsets so reload is O(size) with no
recursion):

* ``format="npz"`` (default, and the only pre-existing format) — a
  single compressed ``.npz`` archive. Compact, but every byte is
  decompressed into private memory at load.
* ``format="raw"`` — a *directory* of uncompressed per-array ``.npy``
  files plus a ``meta.json``, opened with ``mmap_mode="r"``. Loading
  maps the files instead of reading them: cold starts are O(metadata),
  the page cache holds one shared copy of the arrays across every
  process serving the archive, and frozen envelopes are stored in their
  resident timestamp-major layout so not a single element is copied or
  transposed on the way in. The directory commits atomically:
  ``meta.json`` is written last via tmp-file + fsync + rename (the same
  protocol as the live plane's ``MANIFEST.json``), so a crash
  mid-write leaves a directory without valid metadata — which
  :func:`load_index` rejects loudly — never a half-written archive
  that mmap would happily map.

Loaded indices answer queries identically to the originals — enforced
by round-trip tests.

Frozen indexes (:class:`~repro.core.frozen.FrozenTSIndex`, standalone
or as shards of a sharded engine) round-trip their flat arrays
*natively*: the archive stores the structure-of-arrays form verbatim
and loading is pure array reads — no node objects are rebuilt and no
windows are re-inserted. Standalone frozen dumps of per-window sources
additionally embed the source's rolling window statistics
(``win_means`` / ``win_stds``): those are block-computed over the
*monolithic* series, so an archive of a detached chunk (a live sealed
segment) reloaded in another process stays bitwise identical to the
parent's in-memory segment.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import numpy as np

from .._util import POSITION_DTYPE
from ..core.frozen import ARRAY_FIELDS, RAW_ARRAY_FIELDS, FrozenTSIndex
from ..core.mbts import MBTS
from ..core.normalization import Normalization
from ..core.stats import BuildStats
from ..core.tsindex import TSIndex, TSIndexParams, _Node
from ..core.windows import WindowSource, assemble_source
from ..exceptions import InvalidParameterError, SerializationError
from ..indices.isax import ISAXIndex, ISAXParams, _ISAXNode
from ..indices.kvindex import KVIndex, KVIndexParams
from ..indices.sax import SAXAlphabet
from ..indices.sweepline import SweeplineSearch
from ..obs.metrics import HandleCache

#: Format marker written into every archive.
FORMAT_VERSION = 1

#: The on-disk containers :func:`save_index` can write.
ARCHIVE_FORMATS = ("npz", "raw")

#: Commit marker of a raw archive directory (written last, atomically).
RAW_META_NAME = "meta.json"

_load_metrics = HandleCache(
    lambda registry: registry.histogram(
        "repro_archive_load_seconds",
        "Index archive open latency by on-disk container format, in "
        "seconds (raw archives are mmapped, so this excludes the lazy "
        "page-in of the array data).",
        labels=("format",),
    )
)


def _payload_for(index, *, raw: bool) -> dict:
    from ..engine.sharding import ShardedTSIndex  # lazy: engine imports us

    if isinstance(index, ShardedTSIndex):
        return _dump_sharded(index, raw=raw)
    if isinstance(index, FrozenTSIndex):
        return _dump_frozen(index, raw=raw)
    if isinstance(index, TSIndex):
        return _dump_tsindex(index)
    if isinstance(index, KVIndex):
        return _dump_kvindex(index)
    if isinstance(index, ISAXIndex):
        return _dump_isax(index)
    if isinstance(index, SweeplineSearch):
        return _dump_sweepline(index)
    raise SerializationError(
        f"cannot serialize object of type {type(index).__name__}"
    )


def save_index(index, path, *, format: str = "npz", fsync: bool = True) -> None:
    """Serialize ``index`` to ``path``.

    ``format="npz"`` writes a single compressed archive file;
    ``format="raw"`` writes an uncompressed, mmap-able archive
    *directory* (committed atomically; ``fsync=False`` skips the
    durability syncs for throwaway archives such as test fixtures).
    """
    if format not in ARCHIVE_FORMATS:
        raise InvalidParameterError(
            f"unknown archive format {format!r}; expected one of "
            f"{ARCHIVE_FORMATS}"
        )
    path = os.fspath(path)
    payload = _payload_for(index, raw=(format == "raw"))
    if format == "npz":
        np.savez_compressed(path, **payload)
    else:
        _write_raw(path, payload, fsync=fsync)


class _RawArchive:
    """Lazy mapping view over a raw archive directory: ``data[field]``
    opens ``<dir>/<field>.npy`` with ``mmap_mode`` (read-only pages
    shared through the OS page cache). Quacks like the dict the npz
    path builds, so every ``_load_*`` works on both containers."""

    __slots__ = ("_path", "_mmap_mode")

    def __init__(self, path: str, mmap_mode: str | None):
        self._path = path
        self._mmap_mode = mmap_mode

    def _file(self, key: str) -> str:
        return os.path.join(self._path, f"{key}.npy")

    def __contains__(self, key) -> bool:
        return os.path.exists(self._file(key))

    def __getitem__(self, key) -> np.ndarray:
        try:
            return np.load(
                self._file(key), mmap_mode=self._mmap_mode, allow_pickle=False
            )
        except (OSError, ValueError) as exc:
            raise SerializationError(
                f"cannot read array {key!r} of raw archive "
                f"{self._path!r}: {exc}"
            ) from exc


def _write_raw(path: str, payload: dict, *, fsync: bool = True) -> None:
    """Write ``payload`` as an atomically committed raw archive
    directory: metadata is removed first (readers of a half-rewritten
    directory fail loudly, not silently stale), each array is written
    to a tmp name, fsynced and renamed into place, and ``meta.json``
    commits the archive last — the exact protocol of the live plane's
    manifest writes."""
    from ..live.wal import fsync_directory  # lazy: avoids cycle

    meta_text = str(np.asarray(payload["meta"])[()])
    os.makedirs(path, exist_ok=True)
    meta_file = os.path.join(path, RAW_META_NAME)
    if os.path.exists(meta_file):
        os.unlink(meta_file)
    for name in os.listdir(path):
        if name.endswith(".npy") or name.endswith(".tmp"):
            os.unlink(os.path.join(path, name))
    for key, value in payload.items():
        if key == "meta":
            continue
        target = os.path.join(path, f"{key}.npy")
        tmp = target + ".tmp"
        with open(tmp, "wb") as handle:
            np.save(handle, np.ascontiguousarray(value))
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    tmp = meta_file + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(meta_text)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, meta_file)
    if fsync:
        fsync_directory(path)


def load_index(path, *, mmap: bool = True):
    """Restore an index previously written by :func:`save_index`.

    A directory is opened as a raw archive (``mmap=True`` maps the
    array files zero-copy; ``mmap=False`` reads them into private
    memory); a file is read as a compressed ``.npz`` archive — legacy
    archives keep loading unchanged. Sharded engines remember the
    archive they came from (see
    :meth:`~repro.engine.sharding.ShardedTSIndex.attach_archive`), so
    process-pool fan-out can reopen the same archive by path inside
    each worker.
    """
    path = os.fspath(path)
    started = time.perf_counter()
    if os.path.isdir(path):
        container = "raw"
        data = _RawArchive(path, "r" if mmap else None)
        meta_file = os.path.join(path, RAW_META_NAME)
        try:
            with open(meta_file, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"archive {path!r} has no valid metadata "
                "(uncommitted or torn raw archive?)"
            ) from exc
    else:
        container = "npz"
        try:
            with np.load(path, allow_pickle=False) as archive:
                data = {key: archive[key] for key in archive.files}
        except (OSError, ValueError) as exc:
            raise SerializationError(
                f"cannot read archive {path!r}: {exc}"
            ) from exc
        try:
            meta = json.loads(str(data["meta"][()]))
        except (KeyError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"archive {path!r} has no valid metadata"
            ) from exc
    if meta.get("format") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported archive format {meta.get('format')!r}"
        )
    method = meta.get("method")
    loaders = {
        "tsindex": _load_tsindex,
        "kvindex": _load_kvindex,
        "isax": _load_isax,
        "sweepline": _load_sweepline,
        "sharded_tsindex": _load_sharded,
    }
    if method not in loaders:
        raise SerializationError(f"unknown method {method!r} in archive")
    index = loaders[method](meta, data)
    _load_metrics().labels(format=container).observe(
        time.perf_counter() - started
    )
    if hasattr(index, "attach_archive"):
        index.attach_archive(path)
    return index


# ----------------------------------------------------------------------
# Shared pieces
# ----------------------------------------------------------------------
def _meta_for(index, method: str, extra: dict | None = None) -> str:
    source = index.source
    meta = {
        "format": FORMAT_VERSION,
        "method": method,
        "length": source.length,
        "normalization": source.normalization.value,
        "series_name": source.series.name,
        "build_stats": dataclasses.asdict(index.build_stats),
    }
    if extra:
        meta.update(extra)
    return json.dumps(meta)


def _source_from(meta: dict, data: dict) -> WindowSource:
    from ..core.series import TimeSeries

    name = meta.get("series_name", "")
    length = int(meta["length"])
    normalization = Normalization(meta["normalization"])
    if "win_means" in data:
        # The archive carries the source's rolling statistics verbatim
        # (a per-window source over a *detached chunk*, e.g. a live
        # sealed segment: recomputing them standalone would move the
        # block boundaries of the blocked rolling std and break bitwise
        # identity with the parent plane).
        return assemble_source(
            np.asarray(data["series"]),
            length,
            normalization,
            means=np.asarray(data["win_means"]),
            stds=np.asarray(data["win_stds"]),
            name=name,
        )
    series = TimeSeries(data["series"], name=name)
    return WindowSource(series, length, normalization)


def _build_stats_from(meta: dict) -> BuildStats:
    return BuildStats(**meta.get("build_stats", {}))


# ----------------------------------------------------------------------
# TS-Index: pre-order flattening with explicit child ranges
# ----------------------------------------------------------------------
def _tsindex_params_meta(params: TSIndexParams) -> dict:
    return {
        "min_children": params.min_children,
        "max_children": params.max_children,
        "split_metric": params.split_metric,
    }


def _flatten_tree(root: _Node) -> dict:
    """Flatten one TS-Index tree into plain arrays (no meta, no series).

    Breadth-first so children of one node are contiguous; shared by the
    monolithic and the sharded dump paths.
    """
    uppers, lowers = [], []
    kinds, child_starts, child_counts = [], [], []
    position_offsets, position_data = [], []
    order: list[_Node] = []

    def visit(node: _Node) -> int:
        my_id = len(order)
        order.append(node)
        uppers.append(node.mbts.upper)
        lowers.append(node.mbts.lower)
        kinds.append(1 if node.is_leaf else 0)
        child_starts.append(0)
        child_counts.append(0)
        position_offsets.append(len(position_data))
        if node.is_leaf:
            position_data.extend(node.positions)
        return my_id

    queue = [root]
    visit(root)
    head = 0
    while head < len(queue):
        node = queue[head]
        node_id = head
        head += 1
        if not node.is_leaf:
            child_starts[node_id] = len(order)
            child_counts[node_id] = len(node.children)
            for child in node.children:
                visit(child)
                queue.append(child)

    return {
        "uppers": np.asarray(uppers),
        "lowers": np.asarray(lowers),
        "kinds": np.asarray(kinds, dtype=np.int8),
        "child_starts": np.asarray(child_starts, dtype=np.int64),
        "child_counts": np.asarray(child_counts, dtype=np.int64),
        "position_offsets": np.asarray(
            position_offsets + [len(position_data)], dtype=np.int64
        ),
        "positions": np.asarray(position_data, dtype=POSITION_DTYPE),
    }


def _tree_from_arrays(data: dict, *, prefix: str = "") -> _Node | None:
    """Rebuild a TS-Index node tree from :func:`_flatten_tree` arrays."""
    kinds = data[f"{prefix}kinds"]
    uppers = data[f"{prefix}uppers"]
    lowers = data[f"{prefix}lowers"]
    child_starts = data[f"{prefix}child_starts"]
    child_counts = data[f"{prefix}child_counts"]
    offsets = data[f"{prefix}position_offsets"]
    positions = data[f"{prefix}positions"]

    nodes: list[_Node] = []
    for i in range(kinds.size):
        mbts = MBTS(uppers[i], lowers[i])
        if kinds[i] == 1:
            nodes.append(_Node(mbts, positions=[]))
        else:
            nodes.append(_Node(mbts, children=[]))
    for i in range(kinds.size):
        if kinds[i] == 1:
            start = int(offsets[i])
            count_here = _leaf_span(i, kinds, offsets, positions.size)
            nodes[i].positions = [int(p) for p in positions[start : start + count_here]]
        else:
            first = int(child_starts[i])
            nodes[i].children = [
                nodes[j] for j in range(first, first + int(child_counts[i]))
            ]
    return nodes[0] if nodes else None


def _dump_tsindex(index: TSIndex) -> dict:
    if index._root is None:
        raise SerializationError("cannot serialize an empty TS-Index")
    payload = {
        "meta": np.asarray(
            _meta_for(
                index, "tsindex", {"params": _tsindex_params_meta(index.params)}
            )
        ),
        "series": index.source.series.values,
    }
    payload.update(_flatten_tree(index._root))
    return payload


def _load_tsindex(meta: dict, data: dict) -> TSIndex | FrozenTSIndex:
    source = _source_from(meta, data)
    params = TSIndexParams(**meta["params"])
    if meta.get("frozen"):
        # Frozen archives hold the flat arrays natively; loading is
        # pure array reads — no node objects, no re-insertion. Raw
        # archives store the envelopes timestamp-major (``uppers_t``):
        # those views (mmaps) are adopted as-is, zero-copy.
        fields = RAW_ARRAY_FIELDS if "uppers_t" in data else ARRAY_FIELDS
        return FrozenTSIndex.from_arrays(
            source,
            params,
            _build_stats_from(meta),
            {field: data[field] for field in fields},
        )
    root = _tree_from_arrays(data)
    index = TSIndex._from_prebuilt_root(
        source, root, params, _build_stats_from(meta)
    )
    return index


def _dump_frozen(index: FrozenTSIndex, *, raw: bool = False) -> dict:
    """Frozen indexes serialize their flat arrays verbatim (the raw
    container keeps the envelopes timestamp-major, so neither save nor
    load ever transposes them)."""
    payload = {
        "meta": np.asarray(
            _meta_for(
                index,
                "tsindex",
                {
                    "params": _tsindex_params_meta(index.params),
                    "frozen": True,
                },
            )
        ),
        "series": index.source.series.values,
    }
    source = index.source
    if source._means is not None:
        payload["win_means"] = source._means
        payload["win_stds"] = source._stds
    payload.update(index.raw_arrays() if raw else index.arrays())
    return payload


def _leaf_span(i: int, kinds, offsets, total: int) -> int:
    """Positions stored by leaf ``i``: up to the next node's offset."""
    start = int(offsets[i])
    stop = int(offsets[i + 1]) if i + 1 < offsets.size else total
    return stop - start


# ----------------------------------------------------------------------
# KV-Index: bins flattened to (bin, start, stop) triples
# ----------------------------------------------------------------------
def _dump_kvindex(index: KVIndex) -> dict:
    triples = []
    for bin_id in range(index.num_bins):
        for start, stop in index.bin_intervals(bin_id):
            triples.append((bin_id, start, stop))
    return {
        "meta": np.asarray(
            _meta_for(index, "kvindex", {"num_bins": index.params.num_bins})
        ),
        "series": index.source.series.values,
        "edges": index.edges,
        "triples": np.asarray(triples, dtype=np.int64).reshape(-1, 3),
    }


def _load_kvindex(meta: dict, data: dict) -> KVIndex:
    source = _source_from(meta, data)
    index = KVIndex(source, KVIndexParams(num_bins=int(meta["num_bins"])))
    index._edges = np.asarray(data["edges"], dtype=float)
    bin_count = max(1, index._edges.size - 1)
    index._bins = [[] for _ in range(bin_count)]
    for bin_id, start, stop in data["triples"]:
        index._bins[int(bin_id)].append((int(start), int(stop)))
    index._build_stats = _build_stats_from(meta)
    return index


# ----------------------------------------------------------------------
# iSAX: nodes flattened breadth-first
# ----------------------------------------------------------------------
def _dump_isax(index: ISAXIndex) -> dict:
    words, bits, kinds = [], [], []
    split_segments, child_zero, child_one = [], [], []
    root_keys: list[int] = []
    position_offsets, position_data = [], []

    order: list[_ISAXNode] = []
    queue: list[_ISAXNode] = []
    for key, node in sorted(index._root_children.items()):
        root_keys.append(len(order))
        queue.append(node)
        order.append(node)
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        if not node.is_leaf:
            for bit in (0, 1):
                child = node.children[bit]
                order.append(child)
                queue.append(child)

    ids = {id(node): i for i, node in enumerate(order)}
    for node in order:
        words.append(node.word)
        bits.append(node.bits)
        kinds.append(1 if node.is_leaf else 0)
        position_offsets.append(len(position_data))
        if node.is_leaf:
            split_segments.append(-1)
            child_zero.append(-1)
            child_one.append(-1)
            position_data.extend(node.positions)
        else:
            split_segments.append(node.split_segment)
            child_zero.append(ids[id(node.children[0])])
            child_one.append(ids[id(node.children[1])])

    params = index.params
    alphabet = index.alphabet
    return {
        "meta": np.asarray(
            _meta_for(
                index,
                "isax",
                {
                    "params": {
                        "segments": params.segments,
                        "leaf_capacity": params.leaf_capacity,
                        "base_bits": params.base_bits,
                        "max_bits": params.max_bits,
                    }
                },
            )
        ),
        "series": index.source.series.values,
        "alphabet": alphabet.breakpoints(alphabet.max_cardinality),
        "words": np.asarray(words, dtype=np.int64),
        "bits": np.asarray(bits, dtype=np.int64),
        "kinds": np.asarray(kinds, dtype=np.int8),
        "split_segments": np.asarray(split_segments, dtype=np.int64),
        "child_zero": np.asarray(child_zero, dtype=np.int64),
        "child_one": np.asarray(child_one, dtype=np.int64),
        "root_keys": np.asarray(root_keys, dtype=np.int64),
        "position_offsets": np.asarray(
            position_offsets + [len(position_data)], dtype=np.int64
        ),
        "positions": np.asarray(position_data, dtype=POSITION_DTYPE),
    }


def _load_isax(meta: dict, data: dict) -> ISAXIndex:
    source = _source_from(meta, data)
    params = ISAXParams(**meta["params"])
    alphabet = SAXAlphabet(data["alphabet"], 1 << params.max_bits)
    index = ISAXIndex(source, params, alphabet)
    from ..indices.paa import paa_matrix

    index._paa = paa_matrix(source, params.segments)
    index._sax = alphabet.symbols(index._paa)

    kinds = data["kinds"]
    words = data["words"]
    bits = data["bits"]
    offsets = data["position_offsets"]
    positions = data["positions"]

    nodes: list[_ISAXNode] = []
    for i in range(kinds.size):
        node = _ISAXNode(words[i].copy(), bits[i].copy(), alphabet)
        nodes.append(node)
    for i in range(kinds.size):
        if kinds[i] == 1:
            start = int(offsets[i])
            stop = int(offsets[i + 1]) if i + 1 < offsets.size else positions.size
            nodes[i].positions = [int(p) for p in positions[start:stop]]
        else:
            nodes[i].positions = None
            nodes[i].split_segment = int(data["split_segments"][i])
            nodes[i].children = {
                0: nodes[int(data["child_zero"][i])],
                1: nodes[int(data["child_one"][i])],
            }
    index._root_children = {}
    for root_id in data["root_keys"]:
        node = nodes[int(root_id)]
        key = tuple(int(symbol) for symbol in node.word)
        index._root_children[key] = node
    index._build_stats = _build_stats_from(meta)
    return index


# ----------------------------------------------------------------------
# Sharded TS-Index: per-shard trees flattened under prefixed keys
# ----------------------------------------------------------------------
def _dump_sharded(engine, *, raw: bool = False) -> dict:
    """One archive holding the full series plus every shard tree.

    Shard window sources are zero-copy views of the monolithic source,
    so only the monolithic series is stored; shard ``i``'s arrays are
    prefixed ``s{i}_`` and its span recorded in the metadata.
    """
    shard_meta = []
    payload: dict = {"series": engine.source.series.values}
    for i, ((start, stop), tree) in enumerate(zip(engine.spans, engine.shards)):
        if isinstance(tree, FrozenTSIndex):
            arrays = tree.raw_arrays() if raw else tree.arrays()
            frozen = True
        else:
            if tree._root is None:
                raise SerializationError("cannot serialize an empty shard tree")
            arrays = _flatten_tree(tree._root)
            frozen = False
        for key, value in arrays.items():
            payload[f"s{i}_{key}"] = value
        shard_meta.append(
            {
                "start": start,
                "stop": stop,
                "frozen": frozen,
                "build_stats": dataclasses.asdict(tree.build_stats),
            }
        )
    payload["meta"] = np.asarray(
        _meta_for(
            engine,
            "sharded_tsindex",
            {
                "params": _tsindex_params_meta(engine.params),
                "shards": shard_meta,
            },
        )
    )
    return payload


def _load_sharded(meta: dict, data: dict):
    from ..engine.sharding import ShardedTSIndex  # lazy: engine imports us

    source = _source_from(meta, data)
    params = TSIndexParams(**meta["params"])
    starts: list[int] = []
    trees: list[TSIndex | FrozenTSIndex] = []
    for i, shard in enumerate(meta["shards"]):
        start, stop = int(shard["start"]), int(shard["stop"])
        shard_source = source.shard(start, stop)
        build_stats = BuildStats(**shard.get("build_stats", {}))
        if shard.get("frozen"):
            fields = (
                RAW_ARRAY_FIELDS
                if f"s{i}_uppers_t" in data
                else ARRAY_FIELDS
            )
            trees.append(
                FrozenTSIndex.from_arrays(
                    shard_source,
                    params,
                    build_stats,
                    {
                        field: data[f"s{i}_{field}"]
                        for field in fields
                    },
                )
            )
        else:
            root = _tree_from_arrays(data, prefix=f"s{i}_")
            trees.append(
                TSIndex._from_prebuilt_root(
                    shard_source, root, params, build_stats
                )
            )
        starts.append(start)
    return ShardedTSIndex._from_prebuilt(source, starts, trees, params)


# ----------------------------------------------------------------------
# Sweepline: only the series and regime are needed
# ----------------------------------------------------------------------
def _dump_sweepline(index: SweeplineSearch) -> dict:
    return {
        "meta": np.asarray(_meta_for(index, "sweepline")),
        "series": index.source.series.values,
    }


def _load_sweepline(meta: dict, data: dict) -> SweeplineSearch:
    return SweeplineSearch.from_source(_source_from(meta, data))
