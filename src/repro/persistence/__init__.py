"""Index persistence: save/load every search method to/from disk."""

from .serializer import load_index, save_index

__all__ = ["load_index", "save_index"]
