"""Chaos harness: kill-and-recover loops and fault storms for the live plane.

This module drives the *real* serving stack — a durable
:class:`~repro.live.LiveTwinIndex` under bursty ingest with concurrent
queries — through injected crashes and I/O fault storms, and checks the
recovery contract after every incident:

* every **acked** append (one that returned to the caller) survives
  recovery, and the recovered series is a bitwise prefix of the fed
  stream (an in-flight append may land partially-durable or not at all,
  never corrupted);
* search / k-NN answers over the recovered plane are **byte-exact**
  against a from-scratch :class:`~repro.core.tsindex.TSIndex` oracle
  built over the recovered series;
* the plane stays serviceable through non-fatal fault storms (ENOSPC,
  torn writes, transient I/O errors) — failed appends surface as typed
  :class:`~repro.exceptions.StorageError`\\ s and later appends succeed.

``benchmarks/bench_chaos.py`` and the ``repro chaos`` CLI subcommand are
thin drivers over :func:`run_kill_recover` and :func:`run_storm`.

This module is imported lazily (``import repro.faults.chaos``) — it
pulls in :mod:`repro.live` and :mod:`repro.core`, so importing it from
``repro.faults.__init__`` would create an import cycle.
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np

from ..core.tsindex import TSIndex
from ..exceptions import (
    IndexNotBuiltError,
    ReproError,
    SimulatedCrashError,
    StorageError,
)
from ..live import LiveTwinIndex
from ..obs.logsetup import get_logger
from . import failpoints

_log = get_logger("repro.faults.chaos")

#: The crash sites the kill-and-recover loop cycles through, with the
#: arming that makes each one a *kill*: a torn WAL write, a crash
#: mid-seal, a crash between the manifest tmp write and its rename, a
#: partially written manifest tmp, a crash mid-segment-write, and a
#: crash inside the background compaction merge.
CRASH_SITES = (
    ("wal.append", {"payload": {"torn_after_bytes": 7}}),
    ("live.seal", {"crash": True}),
    ("manifest.commit", {"crash": True}),
    ("manifest.commit", {"payload": {"truncate_tmp_to": 5}}),
    ("segment.write", {"crash": True}),
    ("compaction.merge", {"crash": True}),
)


def _chebyshev_epsilon(values: np.ndarray) -> float:
    """A selectivity-reasonable epsilon for chaos queries: a fraction of
    the series' spread (deterministic given the values)."""
    spread = float(np.std(values)) if values.size else 1.0
    return max(1e-6, 0.5 * spread)


def _oracle_violations(live: LiveTwinIndex, rng: np.random.Generator,
                       queries: int = 3) -> int:
    """Byte-exactness check: ``queries`` searches plus one k-NN against
    a from-scratch TS-Index over the recovered series. Returns the
    number of violations (0 on a correct recovery)."""
    values = np.asarray(live.values, dtype=float)
    length = live.length
    if values.size < length:
        return 0  # nothing indexed yet: nothing to compare
    oracle = TSIndex.build(
        values, length=length, normalization=live.normalization
    )
    epsilon = _chebyshev_epsilon(values)
    violations = 0
    count = values.size - length + 1
    for _ in range(queries):
        start = int(rng.integers(0, count))
        query = values[start:start + length]
        got = live.search(query, epsilon)
        want = oracle.search(query, epsilon)
        if not (
            np.array_equal(got.positions, want.positions)
            and np.array_equal(got.distances, want.distances)
        ):
            violations += 1
    start = int(rng.integers(0, count))
    got = live.knn(values[start:start + length], k=3)
    want = oracle.knn(values[start:start + length], k=3)
    if not (
        np.array_equal(got.positions, want.positions)
        and np.array_equal(got.distances, want.distances)
    ):
        violations += 1
    return violations


class _QueryLoad(threading.Thread):
    """Concurrent query pressure while ingest (and faults) run: a
    background thread searching random windows until stopped. Fault-era
    errors are tolerated and counted, never raised."""

    def __init__(self, live: LiveTwinIndex, seed: int) -> None:
        super().__init__(name="chaos-query-load", daemon=True)
        self._live = live
        self._rng = np.random.default_rng(seed)
        self._halt = threading.Event()
        self.queries = 0
        self.errors = 0

    def run(self) -> None:
        length = self._live.length
        while not self._halt.is_set():
            try:
                values = self._live.values
                if values.size < length:
                    time.sleep(0.001)
                    continue
                start = int(self._rng.integers(0, values.size - length + 1))
                query = np.array(values[start:start + length])
                self._live.search(query, _chebyshev_epsilon(query))
                self.queries += 1
            except (ReproError, OSError, SimulatedCrashError):
                self.errors += 1
            except Exception:  # the plane may be mid-abandon
                self.errors += 1

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)


def run_kill_recover(
    directory: Any,
    *,
    loops: int = 25,
    length: int = 32,
    seal_threshold: int = 96,
    max_segments: int = 3,
    burst: tuple[int, int] = (24, 160),
    seed: int = 0,
    query_load: bool = True,
) -> dict:
    """``loops`` kill-and-recover incidents against one durable plane.

    Each loop arms the next :data:`CRASH_SITES` entry, ingests bursty
    appends (with a concurrent query thread when ``query_load``) until
    the simulated kill lands, abandons the plane exactly as a process
    death would, recovers from disk, and asserts the recovery contract
    (acked-durability, bitwise prefix, oracle byte-exactness). Returns
    an accounting dict; ``exactness_violations`` must be 0.
    """
    rng = np.random.default_rng(seed)
    live = LiveTwinIndex.create(
        str(directory),
        length=length,
        seal_threshold=seal_threshold,
        max_segments=max_segments,
    )
    # Warm the plane past its first full window so queries serve.
    warm = np.cumsum(rng.normal(size=4 * length))
    live.append(warm)
    acked = list(np.asarray(live.values, dtype=float))

    recovery_seconds: list[float] = []
    crashes_by_site: dict[str, int] = {}
    violations = 0
    total_queries = 0
    total_query_errors = 0

    for loop in range(loops):
        site, config = CRASH_SITES[loop % len(CRASH_SITES)]
        load = _QueryLoad(live, seed=seed + loop) if query_load else None
        if load is not None:
            load.start()
        pending: np.ndarray | None = None
        crashed = False
        failpoints.arm(site, **config)
        try:
            # Bursty ingest until the armed kill lands (bounded so a
            # site that cannot fire — e.g. compaction on a quiescent
            # plane — does not spin forever).
            for _ in range(400):
                chunk = np.cumsum(rng.normal(size=int(
                    rng.integers(burst[0], burst[1])
                ))) + (acked[-1] if acked else 0.0)
                try:
                    live.append(chunk)
                    acked.extend(chunk.tolist())
                except SimulatedCrashError:
                    pending = chunk
                    crashed = True
                    break
                except StorageError:
                    # A torn write surfaced as ENOSPC before the crash
                    # variant landed; the plane rolled it back.
                    continue
                if site == "compaction.merge":
                    live.compact(timeout=10.0)
                    if live.stats()["compaction"]["crashed"]:
                        crashed = True
                        break
        finally:
            failpoints.disarm(site)
            if load is not None:
                load.stop()
                total_queries += load.queries
                total_query_errors += load.errors
        if not crashed:
            _log.warning("loop %d: site %s never fired; continuing", loop, site)
            continue
        crashes_by_site[site] = crashes_by_site.get(site, 0) + 1

        # The kill: drop the plane without flushing, recover from disk.
        live.abandon()
        started = time.perf_counter()
        live = LiveTwinIndex.recover(str(directory))
        recovery_seconds.append(time.perf_counter() - started)

        # Recovery contract: all acked readings durable; the recovered
        # series is a bitwise prefix of acked + the in-flight chunk.
        stream = np.asarray(
            acked + (pending.tolist() if pending is not None else []),
            dtype=float,
        )
        recovered = np.asarray(live.values, dtype=float)
        if recovered.size < len(acked):
            violations += 1
            _log.error(
                "loop %d (%s): lost acked data — %d recovered < %d acked",
                loop, site, recovered.size, len(acked),
            )
        elif not np.array_equal(recovered, stream[: recovered.size]):
            violations += 1
            _log.error("loop %d (%s): recovered bytes diverge", loop, site)
        acked = list(recovered)

        violations += _oracle_violations(live, rng)

    live.close()
    recovery = np.asarray(recovery_seconds, dtype=float)
    return {
        "loops": loops,
        "crashes": int(recovery.size),
        "crashes_by_site": crashes_by_site,
        "final_readings": len(acked),
        "exactness_violations": int(violations),
        "concurrent_queries": total_queries,
        "concurrent_query_errors": total_query_errors,
        "recovery_seconds": {
            "mean": float(recovery.mean()) if recovery.size else None,
            "max": float(recovery.max()) if recovery.size else None,
        },
    }


def run_storm(
    directory: Any,
    *,
    mode: str = "enospc",
    appends: int = 300,
    queries: int = 200,
    probability: float = 0.15,
    length: int = 32,
    seal_threshold: int = 128,
    seed: int = 0,
) -> dict:
    """One fault storm: probabilistic faults on the WAL append edge
    while appends and queries keep coming.

    ``mode="enospc"`` arms torn ENOSPC writes (partial record + disk
    full; the WAL rolls each one back); ``mode="io"`` arms plain
    injected I/O errors; ``mode="search"`` arms per-segment search
    faults instead, so the *query* path degrades. The plane must stay
    serviceable: failed operations surface typed errors, successes stay
    byte-exact against the oracle, and query latency is reported as
    p50/p99 under fault load.
    """
    if mode not in ("enospc", "io", "search"):
        raise ValueError(f"unknown storm mode {mode!r}")
    rng = np.random.default_rng(seed)
    live = LiveTwinIndex.create(
        str(directory), length=length, seal_threshold=seal_threshold
    )
    live.append(np.cumsum(rng.normal(size=6 * length)))
    acked = list(np.asarray(live.values, dtype=float))

    if mode == "enospc":
        failpoints.arm(
            "wal.append",
            payload={"torn_after_bytes": 9, "error": "enospc"},
            probability=probability,
            seed=seed,
        )
    elif mode == "io":
        failpoints.arm(
            "wal.append", error="io", probability=probability, seed=seed
        )
    else:
        failpoints.arm(
            "segment.search", error="io", probability=probability, seed=seed
        )

    append_failures = 0
    query_failures = 0
    latencies: list[float] = []
    try:
        for i in range(max(appends, queries)):
            if i < appends:
                chunk = np.cumsum(np.asarray(
                    rng.normal(size=int(rng.integers(4, 24)))
                )) + acked[-1]
                try:
                    live.append(chunk)
                    acked.extend(chunk.tolist())
                except StorageError:
                    append_failures += 1
            if i < queries and len(acked) >= length:
                start = int(rng.integers(0, len(acked) - length + 1))
                query = np.asarray(acked[start:start + length], dtype=float)
                t0 = time.perf_counter()
                try:
                    live.search(query, _chebyshev_epsilon(query))
                    latencies.append(time.perf_counter() - t0)
                except (ReproError, OSError):
                    query_failures += 1
                except IndexNotBuiltError:
                    pass
    finally:
        failpoints.reset()

    # Post-storm: the plane must still serve exactly, and accept writes.
    violations = _oracle_violations(live, rng)
    post = np.cumsum(rng.normal(size=length)) + acked[-1]
    live.append(post)
    acked.extend(post.tolist())
    serviceable = np.array_equal(
        np.asarray(live.values, dtype=float), np.asarray(acked, dtype=float)
    )
    live.close()

    lat = np.asarray(latencies, dtype=float)
    return {
        "mode": mode,
        "probability": probability,
        "appends": appends,
        "append_failures": append_failures,
        "queries_attempted": queries,
        "query_failures": query_failures,
        "exactness_violations": int(violations),
        "serviceable_after_storm": bool(serviceable),
        "final_readings": len(acked),
        "query_seconds": {
            "p50": float(np.percentile(lat, 50)) if lat.size else None,
            "p99": float(np.percentile(lat, 99)) if lat.size else None,
        },
    }
