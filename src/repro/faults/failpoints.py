"""Deterministic failpoints: named fault-injection sites for the serving stack.

The storage and fan-out layers call :func:`failpoint` at every durability
and distribution edge (``"wal.append"``, ``"manifest.commit"``,
``"shard.search"``, ...). In production nothing is armed and the call is
a single dict lookup on an empty module-global — the disarmed overhead
gate in ``benchmarks/bench_chaos.py`` holds it to <= 1% of the hot
single-query path. Tests and the chaos harness arm sites with
deterministic triggers and let the *real* recovery code run against the
injected failure.

Arming::

    from repro.faults import failpoints

    with failpoints.armed("wal.append", error="enospc", on_hit=3):
        ...           # the 3rd append raises ENOSPC (wrapped in StorageError)

    failpoints.arm("compaction.merge", error=RuntimeError("merge refused"),
                   times=2)             # first two merges fail, then clean
    failpoints.arm("segment.write", error="io", probability=0.25, seed=9)
    failpoints.arm("live.seal", crash=True)          # SimulatedCrashError
    failpoints.arm("wal.append",
                   payload={"torn_after_bytes": 10})  # torn write + crash
    failpoints.reset()

Triggers compose: ``on_hit`` (fire only on the Nth hit, 1-based),
``probability`` + ``seed`` (deterministic Bernoulli stream), and
``times`` (cap on total firings). On firing a site either raises the
configured ``error`` (an exception instance, class, or one of the
shorthands ``"io"`` / ``"enospc"`` / ``"crash"``), raises
:class:`~repro.exceptions.SimulatedCrashError` when ``crash=True``, or
returns ``payload`` for the site to interpret (e.g. the WAL's torn-write
protocol). The registry is process-global and thread-safe; readers never
take a lock — arming swaps the whole mapping.
"""

from __future__ import annotations

import errno as _errno
import random
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from ..exceptions import InvalidParameterError, SimulatedCrashError
from ..obs.metrics import HandleCache

__all__ = [
    "Failpoint",
    "SITES",
    "arm",
    "armed",
    "disarm",
    "failpoint",
    "list_armed",
    "make_error",
    "reset",
    "site_stats",
]

_metrics = HandleCache(
    lambda registry: registry.counter(
        "repro_faults_injected_total",
        "Faults injected by armed failpoints, by site.",
        labels=("site",),
    )
)

#: Error-class shorthands accepted by :func:`arm` / :func:`make_error`.
ERROR_CLASSES = ("io", "enospc", "crash")

#: Canonical registry of every failpoint site in the library. The
#: ``failpoint-sites`` checker (``repro lint``) enforces both directions
#: of the contract: every ``failpoint("...")`` literal in the source
#: tree names a registered site (so an armed chaos test can never
#: silently no-op against a renamed call site), and every registered
#: site still has a call site (so the registry never advertises dead
#: arms). Adding a new site means adding its call *and* its entry here.
SITES = frozenset(
    {
        "compaction.merge",
        "fanout.task",
        "live.seal",
        "manifest.commit",
        "segment.read",
        "segment.search",
        "segment.write",
        "shard.search",
        "wal.append",
        "wal.fsync",
        "wal.rewrite",
    }
)


def make_error(kind: str) -> BaseException:
    """Build a fresh exception for an error-class shorthand.

    ``"io"`` -> a generic :class:`OSError`; ``"enospc"`` -> ``OSError``
    with ``errno.ENOSPC``; ``"crash"`` ->
    :class:`~repro.exceptions.SimulatedCrashError`.
    """
    if kind == "io":
        return OSError("injected I/O error")
    if kind == "enospc":
        return OSError(_errno.ENOSPC, "injected: no space left on device")
    if kind == "crash":
        return SimulatedCrashError("injected crash")
    raise InvalidParameterError(
        f"unknown failpoint error class {kind!r}; expected one of {ERROR_CLASSES}"
    )


class Failpoint:
    """One armed site: trigger rules plus hit/fire accounting."""

    __slots__ = (
        "name",
        "_error",
        "_crash",
        "payload",
        "_on_hit",
        "_times",
        "_rng",
        "_probability",
        "_lock",
        "hits",
        "fired",
    )

    def __init__(
        self,
        name: str,
        *,
        error: Any = None,
        crash: bool = False,
        payload: Any = None,
        on_hit: int | None = None,
        probability: float | None = None,
        seed: int = 0,
        times: int | None = None,
    ) -> None:
        if error is None and not crash and payload is None:
            raise InvalidParameterError(
                f"failpoint {name!r} needs an action: error=, crash=True, "
                "or payload="
            )
        if error is not None and crash:
            raise InvalidParameterError(
                f"failpoint {name!r}: error= and crash=True are exclusive"
            )
        if isinstance(error, str):
            make_error(error)  # validate the shorthand eagerly
        if on_hit is not None and on_hit < 1:
            raise InvalidParameterError(
                f"failpoint {name!r}: on_hit must be >= 1, got {on_hit}"
            )
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise InvalidParameterError(
                f"failpoint {name!r}: probability must be in [0, 1], "
                f"got {probability}"
            )
        if times is not None and times < 1:
            raise InvalidParameterError(
                f"failpoint {name!r}: times must be >= 1, got {times}"
            )
        self.name = name
        self._error = error
        self._crash = bool(crash)
        self.payload = payload
        self._on_hit = on_hit
        self._times = times
        self._probability = probability
        self._rng = random.Random(seed) if probability is not None else None
        self._lock = threading.Lock()
        self.hits = 0
        self.fired = 0

    def _should_fire(self) -> bool:
        """Count one hit and decide (under the lock) whether to fire."""
        with self._lock:
            self.hits += 1
            if self._times is not None and self.fired >= self._times:
                return False
            if self._on_hit is not None and self.hits != self._on_hit:
                return False
            if self._rng is not None and self._rng.random() >= self._probability:
                return False
            self.fired += 1
            return True

    def _build_error(self) -> BaseException | None:
        if self._crash:
            return SimulatedCrashError(f"injected crash at failpoint {self.name!r}")
        error = self._error
        if error is None:
            return None
        if isinstance(error, str):
            return make_error(error)
        if isinstance(error, type):
            return error(f"injected failure at failpoint {self.name!r}")
        # A fresh instance per firing keeps tracebacks independent.
        try:
            return type(error)(*error.args)
        except Exception:
            return error

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "fired": self.fired}


_lock = threading.Lock()
#: name -> Failpoint. Readers access this without a lock; writers swap
#: the whole dict so a read never observes a half-updated mapping.
_armed: dict[str, Failpoint] = {}
#: Lifetime hit counters per site, kept across reset() for test forensics.
_site_hits: dict[str, int] = {}


def failpoint(name: str, **context: Any) -> Any:
    """Declare a fault-injection site. Returns ``None`` when disarmed.

    When the site is armed and its trigger fires, either raises the
    configured error (``SimulatedCrashError`` for ``crash=True``) or
    returns the armed ``payload`` for site-specific interpretation.
    ``context`` kwargs are accepted for self-description at the call
    site (path, shard id, byte counts); they are intentionally unused on
    the disarmed fast path.
    """
    if not _armed:
        return None
    point = _armed.get(name)
    if point is None:
        return None
    with _lock:
        _site_hits[name] = _site_hits.get(name, 0) + 1
    if not point._should_fire():
        return None
    _metrics().labels(site=name).inc()
    error = point._build_error()
    if error is not None:
        raise error
    return point.payload


def arm(name: str, **config: Any) -> Failpoint:
    """Arm (or re-arm, replacing) the site ``name``. See module docs
    for the trigger/action keywords."""
    point = Failpoint(name, **config)
    with _lock:
        global _armed
        mapping = dict(_armed)
        mapping[name] = point
        _armed = mapping
    return point


def disarm(name: str) -> None:
    """Disarm ``name`` (no-op when it was not armed)."""
    with _lock:
        global _armed
        if name in _armed:
            mapping = dict(_armed)
            del mapping[name]
            _armed = mapping


def reset() -> None:
    """Disarm every site (hit forensics from :func:`site_stats` survive)."""
    with _lock:
        global _armed
        _armed = {}


@contextmanager
def armed(name: str, **config: Any) -> Iterator[Failpoint]:
    """Context manager: arm ``name`` on entry, restore the previous
    arming state (armed-or-not) on exit. Yields the :class:`Failpoint`."""
    global _armed
    with _lock:
        previous = _armed.get(name)
    point = arm(name, **config)
    try:
        yield point
    finally:
        with _lock:
            mapping = dict(_armed)
            if mapping.get(name) is point:
                if previous is not None:
                    mapping[name] = previous
                else:
                    mapping.pop(name, None)
                _armed = mapping


def list_armed() -> dict[str, Failpoint]:
    """Snapshot of the currently armed sites."""
    return dict(_armed)


def site_stats() -> dict[str, dict]:
    """Accounting per site: lifetime hits plus the armed point's
    hit/fire counts (when armed)."""
    with _lock:
        hits = dict(_site_hits)
        points = dict(_armed)
    out: dict[str, dict] = {}
    for name in sorted(set(hits) | set(points)):
        row = {"lifetime_hits": hits.get(name, 0)}
        if name in points:
            row.update(points[name].stats())
        out[name] = row
    return out
