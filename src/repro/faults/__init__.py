"""Fault injection and chaos testing for the serving stack.

Two layers:

* :mod:`repro.faults.failpoints` — the zero-dependency failpoint
  framework. Storage and fan-out code declares named sites
  (``failpoint("wal.append")``); tests and the chaos harness arm them
  with deterministic triggers (nth-hit, seeded probability, bounded
  ``times``) and error classes (I/O error, ENOSPC, torn write,
  simulated crash). Disarmed sites cost one empty-dict check.
* :mod:`repro.faults.chaos` — the kill-and-recover harness driven by
  ``benchmarks/bench_chaos.py`` and the ``repro chaos`` CLI: crash loops
  mid-seal/mid-compaction under bursty ingest, disk-full and torn-write
  storms, byte-exactness asserted against a from-scratch oracle after
  every recovery. Imported lazily (``import repro.faults.chaos``) so the
  failpoint layer stays dependency-free.

Instrumented sites
------------------

==================  =====================================================
site                where it fires
==================  =====================================================
``wal.append``      before a WAL record write (supports the torn-write
                    payload ``{"torn_after_bytes": k, "error": ...}``)
``wal.fsync``       before ``os.fsync`` on the WAL file
``wal.rewrite``     before the WAL tmp-file rewrite begins
``manifest.commit``  after the manifest tmp file is written + fsynced,
                    before the atomic rename
``segment.write``   before a sealed segment archive is written
``segment.read``    before a segment archive is loaded during recovery
``live.seal``       at the start of a seal (delta freeze + archive)
``compaction.merge``  in the background merge loop, before each merge
``shard.search``    per shard inside ``ShardedTSIndex`` fan-out
``segment.search``  per sealed segment inside ``LiveTwinIndex`` fan-out
``fanout.task``     inside every pooled fan-out worker (shared helper)
==================  =====================================================
"""

from .failpoints import (
    Failpoint,
    arm,
    armed,
    disarm,
    failpoint,
    list_armed,
    make_error,
    reset,
    site_stats,
)

__all__ = [
    "Failpoint",
    "arm",
    "armed",
    "disarm",
    "failpoint",
    "list_armed",
    "make_error",
    "reset",
    "site_stats",
]
