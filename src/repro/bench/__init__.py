"""Benchmark harness: workloads, runners and reporting for every
table and figure of the paper's evaluation (Section 6).

The harness is importable (used by the pytest-benchmark suites under
``benchmarks/``) and runnable (via ``python -m repro.cli``), and every
experiment definition lives in :mod:`repro.bench.experiments` keyed by
the paper's figure/table number.
"""

from .harness import ExperimentResult, MethodTiming, run_query_experiment
from .memory import index_memory_bytes, memory_report
from .reporting import format_series_table, format_table, to_markdown
from .timing import Timer, paired_best, sample_seconds
from .workloads import QueryWorkload, generate_workload

__all__ = [
    "ExperimentResult",
    "MethodTiming",
    "QueryWorkload",
    "Timer",
    "format_series_table",
    "format_table",
    "generate_workload",
    "index_memory_bytes",
    "memory_report",
    "paired_best",
    "run_query_experiment",
    "sample_seconds",
    "to_markdown",
]
