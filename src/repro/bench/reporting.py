"""Plain-text and markdown table rendering for experiment output.

The CLI prints the same rows/series the paper's figures plot: one row
per parameter value, one column per method, cells are average query
milliseconds (or MB / seconds for Figure 8).
"""

from __future__ import annotations

from ..exceptions import InvalidParameterError


def format_table(rows: list[dict], *, columns: list[str] | None = None) -> str:
    """Fixed-width table from a list of dicts (one dict per row)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_cell(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    rule = "  ".join("-" * widths[column] for column in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            "  ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series_table(
    sweep_name: str,
    sweep_values,
    per_method: dict,
    *,
    unit: str = "ms",
) -> str:
    """The figure-shaped view: rows = sweep values, columns = methods.

    ``per_method`` maps method name to a list aligned with
    ``sweep_values``. This is exactly the data series each paper figure
    plots.
    """
    methods = list(per_method.keys())
    for method, series in per_method.items():
        if len(series) != len(sweep_values):
            raise InvalidParameterError(
                f"method {method!r} has {len(series)} values for "
                f"{len(sweep_values)} sweep points"
            )
    rows = []
    for i, value in enumerate(sweep_values):
        row = {sweep_name: value}
        for method in methods:
            row[f"{method} ({unit})"] = round(float(per_method[method][i]), 3)
        rows.append(row)
    return format_table(rows)


def to_markdown(rows: list[dict], *, columns: list[str] | None = None) -> str:
    """GitHub-flavoured markdown table from a list of dicts."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(column) for column in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_cell(row.get(column)) for column in columns) + " |"
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
