"""Query workload generation (Section 6.1).

The paper: "For each dataset, we randomly picked 100 subsequences, each
of length l = 100 points, and used them as the query workload in all
tests against that dataset." Queries are drawn from the indexed series
itself, so every query has at least one twin (itself) at ε ≥ 0.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .._util import check_positive_int
from ..core.series import TimeSeries
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError

#: Paper defaults.
DEFAULT_QUERY_COUNT = 100
DEFAULT_QUERY_LENGTH = 100


@dataclasses.dataclass(frozen=True)
class QueryWorkload:
    """A reproducible batch of query subsequences.

    ``positions`` are the extraction offsets in the source series (kept
    for provenance); ``queries`` holds the raw (un-normalized) query
    values — each search method normalizes queries its own way through
    :meth:`WindowSource.prepare_query`.
    """

    positions: tuple[int, ...]
    queries: tuple
    length: int
    seed: int

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def subset(self, count: int) -> "QueryWorkload":
        """The first ``count`` queries (smaller benchmark workloads)."""
        count = check_positive_int(count, name="count")
        count = min(count, len(self.queries))
        return QueryWorkload(
            positions=self.positions[:count],
            queries=self.queries[:count],
            length=self.length,
            seed=self.seed,
        )


def generate_workload(
    series,
    *,
    count: int = DEFAULT_QUERY_COUNT,
    length: int = DEFAULT_QUERY_LENGTH,
    seed: int = 1234,
) -> QueryWorkload:
    """Randomly extract ``count`` query subsequences of ``length``.

    Positions are drawn without replacement where possible, with a fixed
    seed so every experiment (and every method within an experiment)
    sees the identical workload.

    Note: queries are extracted from the *raw* series. Under the GLOBAL
    regime a search method normalizes the whole series; the benchmark
    harness therefore extracts queries from the method's own window
    source instead (see :func:`workload_for_source`), matching how the
    paper's workload lives in the same value domain as the index.
    """
    if not isinstance(series, TimeSeries):
        series = TimeSeries(series)
    count = check_positive_int(count, name="count")
    length = check_positive_int(length, name="length")
    limit = len(series) - length + 1
    if limit < 1:
        raise InvalidParameterError(
            f"series of length {len(series)} has no window of length {length}"
        )
    rng = np.random.default_rng(seed)
    replace = limit < count
    positions = rng.choice(limit, size=count, replace=replace)
    positions = tuple(int(p) for p in positions)
    queries = tuple(
        np.array(series.subsequence(p, length), dtype=float) for p in positions
    )
    return QueryWorkload(
        positions=positions, queries=queries, length=length, seed=seed
    )


def workload_for_source(
    source: WindowSource,
    *,
    count: int = DEFAULT_QUERY_COUNT,
    seed: int = 1234,
) -> QueryWorkload:
    """Extract a workload directly in a window source's value domain.

    Used by the harness so each method receives queries expressed the
    same way its index stores windows (the GLOBAL regime normalizes the
    series before windows are cut; queries must match).
    """
    count = check_positive_int(count, name="count")
    limit = source.count
    rng = np.random.default_rng(seed)
    replace = limit < count
    positions = rng.choice(limit, size=count, replace=replace)
    positions = tuple(int(p) for p in positions)
    queries = tuple(
        np.array(source.window_block(p, p + 1)[0], dtype=float)
        for p in positions
    )
    return QueryWorkload(
        positions=positions, queries=queries, length=source.length, seed=seed
    )
