"""Wall-clock timing primitives shared by the harness, the overhead
benchmarks and the sweep runner.

Three tools, one convention (``time.perf_counter``, seconds):

* :class:`Timer` — a context manager for ad-hoc blocks;
* :func:`paired_best` — the noise-resistant A/B comparison used by the
  overhead gates (``bench_obs_overhead.py``, ``bench_chaos.py``): both
  sides run interleaved (A B A B ...) and the best of each side is
  kept, so drift and one-off stalls hit both sides equally;
* :func:`sample_seconds` — per-repetition samples (after un-timed
  warmup runs) for statistical reporting — the sweep driver's input to
  mean/stdev/CI/percentile summaries, never a single sample.
"""

from __future__ import annotations

import math
import time

from ..exceptions import InvalidParameterError


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.seconds >= 0.0
    True
    """

    __slots__ = ("_start", "seconds")

    def __init__(self):
        self._start = None
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.seconds = time.perf_counter() - self._start

    @property
    def milliseconds(self) -> float:
        """Elapsed time in milliseconds."""
        return self.seconds * 1000.0


def paired_best(repeats, setup_a, run_a, setup_b, run_b):
    """Best wall-clock seconds of two runs, interleaved (A B A B ...).

    ``setup_*`` runs un-timed immediately before its side on every
    round — overhead benchmarks swap process state there (the default
    metrics registry, failpoint bindings) off the clock. Interleaving
    plus best-of makes the *difference* between the sides robust to
    background noise: a stall in round k inflates both sides' round-k
    samples, and the minimum discards it.

    Returns ``(best_a_seconds, best_b_seconds)``.
    """
    repeats = int(repeats)
    if repeats < 1:
        raise InvalidParameterError(f"repeats must be >= 1, got {repeats}")
    best_a = best_b = math.inf
    for _ in range(repeats):
        setup_a()
        started = time.perf_counter()
        run_a()
        best_a = min(best_a, time.perf_counter() - started)
        setup_b()
        started = time.perf_counter()
        run_b()
        best_b = min(best_b, time.perf_counter() - started)
    return best_a, best_b


def sample_seconds(run, *, repetitions, warmup: int = 0) -> list[float]:
    """Wall-clock seconds of ``repetitions`` timed calls to ``run()``,
    preceded by ``warmup`` un-timed calls.

    The warmup runs absorb cold caches, lazy imports and first-touch
    page faults; the returned samples are what statistical summaries
    (mean/stdev/CI/p50/p99) should be computed over — one sample per
    repetition, never a single-sample "measurement".
    """
    repetitions = int(repetitions)
    warmup = int(warmup)
    if repetitions < 1:
        raise InvalidParameterError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    if warmup < 0:
        raise InvalidParameterError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        run()
    samples = []
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        samples.append(time.perf_counter() - started)
    return samples
