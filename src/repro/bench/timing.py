"""Wall-clock timing helper used by the harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.seconds >= 0.0
    True
    """

    __slots__ = ("_start", "seconds")

    def __init__(self):
        self._start = None
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.seconds = time.perf_counter() - self._start

    @property
    def milliseconds(self) -> float:
        """Elapsed time in milliseconds."""
        return self.seconds * 1000.0
