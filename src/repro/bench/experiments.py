"""Experiment definitions for every table and figure (Section 6).

Each ``run_*`` function reproduces one experiment of the paper's
evaluation and returns figure-shaped data: the sweep values, and one
series of average per-query milliseconds per method — exactly what the
corresponding paper figure plots. The CLI renders these as tables;
EXPERIMENTS.md records measured outputs next to the paper's claims.

Experiments (see DESIGN.md §3 for the full index):

* :func:`run_intro`   — §1 Chebyshev-vs-Euclidean result counts;
* :func:`run_figure4` — query time vs ε, z-normalized series;
* :func:`run_figure5` — query time vs subsequence length ``l``;
* :func:`run_figure6` — query time vs ε, per-subsequence z-norm
  (KV-Index inapplicable);
* :func:`run_figure7` — query time vs ε on raw values;
* :func:`run_figure8` — per-index memory footprint and build time;
* :data:`TABLE1` / :data:`TABLE2` — the parameter grids themselves.
"""

from __future__ import annotations

import dataclasses

from ..core.normalization import Normalization
from ..core.windows import WindowSource
from ..data.datasets import dataset_spec, load_dataset
from ..euclidean.mass import twin_vs_euclidean_comparison
from ..indices.base import create_method_from_source
from .harness import ExperimentResult, run_query_experiment
from .memory import index_memory_bytes
from .workloads import workload_for_source

#: Table 2 parameter grids; bold defaults from the paper.
TABLE2_SEGMENTS = (5, 10, 20, 25, 50)
TABLE2_LENGTHS = (50, 100, 150, 200, 250)
DEFAULT_SEGMENTS = 10
DEFAULT_LENGTH = 100

#: Figure 4/6/7 method sets, in the paper's plotting order.
ALL_METHODS = ("sweepline", "kvindex", "isax", "tsindex")
ZNORM_SUBSEQ_METHODS = ("isax", "tsindex")  # Figure 6: KV inapplicable
INDEX_METHODS = ("kvindex", "isax", "tsindex")  # Figure 8

#: The harness reproduces the paper's cost model by default: candidates
#: are verified one at a time, the way the paper fetched each candidate
#: subsequence from disk by random access (Section 6.1). Pass
#: ``verification="bulk"`` to any run_* function for the pure-NumPy
#: in-memory cost model instead (see the verification ablation bench).
DEFAULT_VERIFICATION = "per_candidate"


def table1_rows() -> list[dict]:
    """Table 1 as rows (dataset, length, ε grids)."""
    rows = []
    for name in ("insect", "eeg"):
        spec = dataset_spec(name)
        rows.append(
            {
                "dataset": spec.name,
                "n": spec.full_length,
                "eps (norm)": ", ".join(str(e) for e in spec.normalized_epsilons),
                "eps (non-norm)": ", ".join(str(e) for e in spec.raw_epsilons),
            }
        )
    return rows


def table2_rows() -> list[dict]:
    """Table 2 as rows (segments and length grids)."""
    return [
        {
            "parameter": "number m of segments",
            "values": ", ".join(str(v) for v in TABLE2_SEGMENTS),
            "default": DEFAULT_SEGMENTS,
        },
        {
            "parameter": "sequence length l",
            "values": ", ".join(str(v) for v in TABLE2_LENGTHS),
            "default": DEFAULT_LENGTH,
        },
    ]


@dataclasses.dataclass
class ExperimentContext:
    """Shared, cached state for one dataset at one scale.

    Building indices dominates experiment cost, so sources, workloads
    and built methods are memoized across figures; every figure that
    shares the default parameters reuses the same built indices.
    """

    dataset: str
    scale: float = 1.0
    query_count: int = 100
    workload_seed: int = 1234

    def __post_init__(self):
        self._series = None
        self._sources: dict = {}
        self._methods: dict = {}
        self._workloads: dict = {}
        self.spec = dataset_spec(self.dataset)

    # -- cached building blocks ---------------------------------------
    @property
    def series(self):
        """The (possibly scaled) surrogate series."""
        if self._series is None:
            self._series = load_dataset(self.dataset, scale=self.scale)
        return self._series

    def source(self, length: int, normalization) -> WindowSource:
        """Cached window source for (length, regime)."""
        normalization = Normalization.coerce(normalization)
        key = (length, normalization)
        if key not in self._sources:
            self._sources[key] = WindowSource(self.series, length, normalization)
        return self._sources[key]

    def method(self, name: str, length: int, normalization, **kwargs):
        """Cached built method for (name, length, regime, options)."""
        normalization = Normalization.coerce(normalization)
        key = (name, length, normalization, tuple(sorted(kwargs.items())))
        if key not in self._methods:
            self._methods[key] = create_method_from_source(
                name, self.source(length, normalization), **kwargs
            )
        return self._methods[key]

    def workload(self, length: int, normalization):
        """Cached query workload in the regime's value domain."""
        normalization = Normalization.coerce(normalization)
        key = (length, normalization)
        if key not in self._workloads:
            self._workloads[key] = workload_for_source(
                self.source(length, normalization),
                count=self.query_count,
                seed=self.workload_seed,
            )
        return self._workloads[key]

    # -- epsilon grids --------------------------------------------------
    def epsilons(self, normalization) -> tuple[float, ...]:
        """Table 1's ε grid for the regime, re-scaled for raw data."""
        normalization = Normalization.coerce(normalization)
        if normalization is Normalization.NONE:
            return self.spec.scaled_raw_epsilons(self.series)
        return self.spec.normalized_epsilons

    def default_epsilon(self, normalization) -> float:
        """Table 1's bold default ε for the regime."""
        normalization = Normalization.coerce(normalization)
        if normalization is Normalization.NONE:
            return self.spec.scaled_default_raw_epsilon(self.series)
        return self.spec.default_normalized_epsilon


@dataclasses.dataclass
class FigureData:
    """One figure panel: sweep values + per-method timing series."""

    figure: str
    dataset: str
    sweep_name: str
    sweep_values: tuple
    #: method -> list of avg ms aligned with sweep_values.
    series_ms: dict
    #: the raw per-setting experiment results (with counters).
    results: list[ExperimentResult]

    def method_series(self, method: str) -> list[float]:
        """The timing series of one method."""
        return list(self.series_ms[method])


def _sweep_epsilon(
    ctx: ExperimentContext,
    figure: str,
    normalization,
    methods,
    epsilons=None,
    *,
    segments: int = DEFAULT_SEGMENTS,
    length: int = DEFAULT_LENGTH,
    verification: str = DEFAULT_VERIFICATION,
) -> FigureData:
    """Shared driver for the ε sweeps of Figures 4, 6 and 7."""
    epsilons = tuple(epsilons) if epsilons is not None else ctx.epsilons(normalization)
    workload = ctx.workload(length, normalization)
    built = {
        name: _build(ctx, name, length, normalization, segments)
        for name in methods
    }
    series_ms = {name: [] for name in methods}
    results = []
    for epsilon in epsilons:
        result = run_query_experiment(
            f"{figure}:{ctx.dataset}:eps={epsilon}",
            built,
            workload,
            epsilon,
            parameters={"epsilon": epsilon, "dataset": ctx.dataset},
            search_options={"verification": verification},
        )
        results.append(result)
        for timing in result.timings:
            series_ms[timing.method].append(timing.avg_query_ms)
    return FigureData(
        figure=figure,
        dataset=ctx.dataset,
        sweep_name="epsilon",
        sweep_values=epsilons,
        series_ms=series_ms,
        results=results,
    )


def _build(ctx, name, length, normalization, segments):
    if name == "isax":
        from ..indices.isax import ISAXParams

        return ctx.method(
            name, length, normalization, params=ISAXParams(segments=segments)
        )
    return ctx.method(name, length, normalization)


def run_figure4(
    ctx: ExperimentContext,
    *,
    epsilons=None,
    methods=ALL_METHODS,
    verification: str = DEFAULT_VERIFICATION,
) -> FigureData:
    """Figure 4: query time vs ε on the globally z-normalized series."""
    return _sweep_epsilon(
        ctx, "fig4", Normalization.GLOBAL, methods, epsilons,
        verification=verification,
    )


def run_figure6(
    ctx: ExperimentContext,
    *,
    epsilons=None,
    methods=ZNORM_SUBSEQ_METHODS,
    verification: str = DEFAULT_VERIFICATION,
) -> FigureData:
    """Figure 6: query time vs ε with per-subsequence z-normalization.

    KV-Index is excluded: its mean filter degenerates (Section 4.1).
    """
    return _sweep_epsilon(
        ctx, "fig6", Normalization.PER_WINDOW, methods, epsilons,
        verification=verification,
    )


def run_figure7(
    ctx: ExperimentContext,
    *,
    epsilons=None,
    methods=ALL_METHODS,
    verification: str = DEFAULT_VERIFICATION,
) -> FigureData:
    """Figure 7: query time vs ε on raw (non-normalized) values."""
    return _sweep_epsilon(
        ctx, "fig7", Normalization.NONE, methods, epsilons,
        verification=verification,
    )


def run_figure5(
    ctx: ExperimentContext,
    *,
    lengths=TABLE2_LENGTHS,
    methods=ALL_METHODS,
    epsilon=None,
    verification: str = DEFAULT_VERIFICATION,
) -> FigureData:
    """Figure 5: query time vs subsequence length ``l`` (GLOBAL regime,
    default ε)."""
    normalization = Normalization.GLOBAL
    epsilon = ctx.default_epsilon(normalization) if epsilon is None else epsilon
    series_ms = {name: [] for name in methods}
    results = []
    for length in lengths:
        workload = ctx.workload(length, normalization)
        built = {
            name: _build(ctx, name, length, normalization, DEFAULT_SEGMENTS)
            for name in methods
        }
        result = run_query_experiment(
            f"fig5:{ctx.dataset}:l={length}",
            built,
            workload,
            epsilon,
            parameters={"length": length, "dataset": ctx.dataset},
            search_options={"verification": verification},
        )
        results.append(result)
        for timing in result.timings:
            series_ms[timing.method].append(timing.avg_query_ms)
    return FigureData(
        figure="fig5",
        dataset=ctx.dataset,
        sweep_name="length",
        sweep_values=tuple(lengths),
        series_ms=series_ms,
        results=results,
    )


def run_figure8(
    ctx: ExperimentContext,
    *,
    methods=INDEX_METHODS,
    length: int = DEFAULT_LENGTH,
    normalization=Normalization.GLOBAL,
) -> dict:
    """Figure 8: memory footprint (MB) and build time (s) per index."""
    rows = []
    for name in methods:
        method = _build(ctx, name, length, normalization, DEFAULT_SEGMENTS)
        rows.append(
            {
                "dataset": ctx.dataset,
                "index": name,
                "memory_mb": round(
                    index_memory_bytes(method) / (1024.0 * 1024.0), 3
                ),
                "build_s": round(method.build_stats.seconds, 3),
            }
        )
    return {"figure": "fig8", "rows": rows}


def run_intro(
    ctx: ExperimentContext,
    *,
    epsilon=None,
    query_count: int = 5,
    length: int = DEFAULT_LENGTH,
    normalization=Normalization.GLOBAL,
) -> dict:
    """The introduction's Chebyshev-vs-Euclidean comparison.

    Aggregates :func:`twin_vs_euclidean_comparison` over the first
    ``query_count`` workload queries and reports total counts — the
    paper's single-query version reported 1,034 twins vs 127,887
    Euclidean results on EEG.
    """
    normalization = Normalization.coerce(normalization)
    epsilon = ctx.default_epsilon(normalization) if epsilon is None else epsilon
    source = ctx.source(length, normalization)
    workload = ctx.workload(length, normalization).subset(query_count)
    twin_total = 0
    euclid_total = 0
    missed_total = 0
    per_query = []
    for query in workload:
        comparison = twin_vs_euclidean_comparison(source, query, epsilon)
        twin_total += comparison.twin_count
        euclid_total += comparison.euclidean_count
        missed_total += comparison.missed_twins
        per_query.append(comparison)
    return {
        "figure": "intro",
        "dataset": ctx.dataset,
        "epsilon": float(epsilon),
        "queries": len(workload),
        "twin_results": twin_total,
        "euclidean_results": euclid_total,
        "missed_twins": missed_total,
        "excess_factor": (euclid_total / twin_total) if twin_total else float("inf"),
        "per_query": per_query,
    }


# ----------------------------------------------------------------------
# Shape checks: the qualitative claims each figure supports
# ----------------------------------------------------------------------
def check_figure_shape(data: FigureData) -> dict:
    """Evaluate the paper's qualitative claims on measured series.

    Returns ``{claim: bool}``. Used by EXPERIMENTS.md generation and by
    integration tests (on small scales, so only the robust claims are
    asserted there).
    """
    checks: dict[str, bool] = {}
    series = data.series_ms
    if "tsindex" in series:
        ts = series["tsindex"]
        for other in ("sweepline", "kvindex", "isax"):
            if other in series:
                # 10% tolerance: at the loosest thresholds nearly every
                # window matches and all methods converge (visible in
                # the paper's log-scale plots as well).
                checks[f"tsindex_faster_than_{other}"] = all(
                    t <= o * 1.10 for t, o in zip(ts, series[other])
                )
    if "sweepline" in series and len(series["sweepline"]) >= 2:
        sweep = series["sweepline"]
        spread = (max(sweep) - min(sweep)) / max(max(sweep), 1e-9)
        checks["sweepline_flat_in_sweep"] = spread < 0.5
    if data.figure == "fig5" and "tsindex" in series:
        ts = series["tsindex"]
        checks["tsindex_not_slower_with_length"] = ts[-1] <= ts[0] * 1.5
    return checks
