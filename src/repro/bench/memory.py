"""Index memory footprint estimation (Figure 8a).

The paper reports JVM memory per index. Here we measure the *structural*
size of each index: NumPy buffer bytes plus estimated Python container
overhead for the parts that constitute the index proper (tree nodes,
MBTS envelopes, SAX words, bins and position lists). The raw series and
lazily-built acceleration caches are excluded so the comparison mirrors
the paper's "index size" semantics; pass ``include_caches=True`` to
count caches too.
"""

from __future__ import annotations


import numpy as np

from ..core.tsindex import TSIndex
from ..exceptions import InvalidParameterError
from ..indices.isax import ISAXIndex
from ..indices.kvindex import KVIndex
from ..indices.sweepline import SweeplineSearch

#: Approximate CPython per-object overheads (64-bit) used for the
#: container estimates; exactness is irrelevant — the comparison is
#: across indices measured identically.
_PYOBJECT = 56
_PER_LIST_SLOT = 8
_PER_INT = 28
_PER_TUPLE2 = 56


def _array_bytes(array) -> int:
    if array is None:
        return 0
    return int(np.asarray(array).nbytes)


def index_memory_bytes(index, *, include_caches: bool = False) -> int:
    """Structural memory footprint of any supported index, in bytes."""
    if isinstance(index, TSIndex):
        return _tsindex_bytes(index, include_caches=include_caches)
    if isinstance(index, KVIndex):
        return _kvindex_bytes(index)
    if isinstance(index, ISAXIndex):
        return _isax_bytes(index, include_caches=include_caches)
    if isinstance(index, SweeplineSearch):
        return 0  # nothing is materialized beyond the series itself
    raise InvalidParameterError(
        f"cannot measure object of type {type(index).__name__}"
    )


def _tsindex_bytes(index: TSIndex, *, include_caches: bool) -> int:
    total = 0
    for node, _depth in index.iter_nodes():
        total += _PYOBJECT
        total += _array_bytes(node.mbts.upper) + _array_bytes(node.mbts.lower)
        if node.is_leaf:
            total += _PYOBJECT + len(node.positions) * (_PER_LIST_SLOT + _PER_INT)
        else:
            total += _PYOBJECT + len(node.children) * _PER_LIST_SLOT
            if include_caches:
                total += _array_bytes(node._env_upper)
                total += _array_bytes(node._env_lower)
    return total


def _kvindex_bytes(index: KVIndex) -> int:
    total = _array_bytes(index.edges)
    for bin_id in range(index.num_bins):
        intervals = index.bin_intervals(bin_id)
        total += _PYOBJECT + len(intervals) * (_PER_LIST_SLOT + _PER_TUPLE2 + 2 * _PER_INT)
    return total


def _isax_bytes(index: ISAXIndex, *, include_caches: bool) -> int:
    alphabet = index.alphabet
    total = _array_bytes(alphabet.breakpoints(alphabet.max_cardinality))
    for node in index.iter_nodes():
        total += _PYOBJECT
        total += _array_bytes(node.word) + _array_bytes(node.bits)
        total += _array_bytes(node.low) + _array_bytes(node.high)
        if node.is_leaf:
            total += _PYOBJECT + len(node.positions) * (_PER_LIST_SLOT + _PER_INT)
        else:
            total += _PYOBJECT + 2 * _PER_LIST_SLOT
    if include_caches:
        total += _array_bytes(index._paa) + _array_bytes(index._sax)
    return total


def memory_report(indices: dict) -> dict:
    """``{label: megabytes}`` for a dict of built indices."""
    return {
        label: index_memory_bytes(index) / (1024.0 * 1024.0)
        for label, index in indices.items()
    }
