"""EXPERIMENTS.md generator: run everything, emit paper-vs-measured.

``python -m repro.bench.record --output EXPERIMENTS.md`` executes the
intro experiment and Figures 4-8 on both datasets and renders one
markdown report with, per experiment: the paper's qualitative claim,
the measured series, and the shape-check verdicts. The hand-written
analysis in the repository's EXPERIMENTS.md wraps the output of this
module (see its header for the exact invocation used).
"""

from __future__ import annotations

import argparse
import sys

from . import experiments as exp
from .reporting import to_markdown

#: The paper's qualitative claim for each figure, quoted/condensed from
#: Section 6.2 — what the measured series are compared against.
PAPER_CLAIMS = {
    "fig4": (
        "TS-Index outperforms the rest in every setting; at least an "
        "order of magnitude faster than KV-Index and Sweepline; "
        "consistently better than iSAX; Sweepline flat in ε; all index "
        "methods degrade as ε grows."
    ),
    "fig5": (
        "Increasing l slightly slows Sweepline/KV-Index/iSAX but makes "
        "TS-Index *faster* (higher-level pruning, fewer leaves accessed)."
    ),
    "fig6": (
        "Per-subsequence z-normalization does not change the picture: "
        "TS-Index outperforms iSAX in all cases (KV-Index inapplicable)."
    ),
    "fig7": (
        "On raw (non-normalized) data TS-Index copes better than all "
        "the rest."
    ),
    "fig8a": (
        "KV-Index needs the least memory; iSAX two to three times less "
        "than TS-Index; all fit in main memory."
    ),
    "fig8b": (
        "KV-Index builds far faster than both tree indices (no splits, "
        "only means)."
    ),
    "intro": (
        "On EEG, a Chebyshev query returned 1,034 twins while the "
        "equivalent Euclidean query (radius ε·sqrt(l)) returned "
        "127,887 subsequences (~124x) with zero false negatives."
    ),
}


def figure_section(data: exp.FigureData) -> str:
    """One markdown section for an ε- or length-sweep figure."""
    rows = []
    for i, value in enumerate(data.sweep_values):
        row = {data.sweep_name: value}
        for method, series in data.series_ms.items():
            row[f"{method} (ms)"] = round(series[i], 2)
        rows.append(row)
    checks = exp.check_figure_shape(data)
    verdicts = "; ".join(
        f"{name}: {'PASS' if ok else 'FAIL'}" for name, ok in checks.items()
    )
    return (
        f"### {data.figure} / {data.dataset}\n\n"
        f"{to_markdown(rows)}\n\n"
        f"Shape checks: {verdicts}\n"
    )


def run_dataset(ctx: exp.ExperimentContext) -> list[str]:
    """All experiment sections for one dataset context."""
    sections = []

    intro = exp.run_intro(ctx)
    sections.append(
        f"### intro / {ctx.dataset}\n\n"
        + to_markdown(
            [
                {
                    "epsilon": intro["epsilon"],
                    "queries": intro["queries"],
                    "twin results": intro["twin_results"],
                    "euclidean results": intro["euclidean_results"],
                    "excess factor": round(intro["excess_factor"], 1),
                    "missed twins": intro["missed_twins"],
                }
            ]
        )
        + "\n"
    )

    for runner in (exp.run_figure4, exp.run_figure5, exp.run_figure6, exp.run_figure7):
        sections.append(figure_section(runner(ctx)))

    fig8 = exp.run_figure8(ctx)
    sections.append(
        f"### fig8 / {ctx.dataset}\n\n" + to_markdown(fig8["rows"]) + "\n"
    )
    return sections


def generate_markdown(contexts) -> str:
    """The full measured-results document body."""
    parts = ["## Measured results\n"]
    for ctx in contexts:
        parts.append(
            f"\n## Dataset `{ctx.dataset}` — scale {ctx.scale:g} "
            f"(n = {len(ctx.series)}), {ctx.query_count} queries of "
            f"length {exp.DEFAULT_LENGTH}\n"
        )
        parts.extend(run_dataset(ctx))
    parts.append("\n## Paper claims referenced above\n")
    for key, claim in PAPER_CLAIMS.items():
        parts.append(f"* **{key}** — {claim}")
    return "\n".join(parts) + "\n"


def main(argv=None) -> int:
    """CLI entry point for the record generator."""
    parser = argparse.ArgumentParser(
        description="Run all experiments and emit a markdown record."
    )
    parser.add_argument("--output", default="-", help="output path or - for stdout")
    parser.add_argument("--queries", type=int, default=30)
    parser.add_argument("--scale-insect", type=float, default=1.0)
    parser.add_argument("--scale-eeg", type=float, default=0.1)
    args = parser.parse_args(argv)

    contexts = [
        exp.ExperimentContext(
            dataset="insect", scale=args.scale_insect, query_count=args.queries
        ),
        exp.ExperimentContext(
            dataset="eeg", scale=args.scale_eeg, query_count=args.queries
        ),
    ]
    document = generate_markdown(contexts)
    if args.output == "-":
        sys.stdout.write(document)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
    return 0


if __name__ == "__main__":
    sys.exit(main())
