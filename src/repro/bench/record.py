"""Benchmark records: the shared JSON artifact envelope, and the
EXPERIMENTS.md generator.

Artifact envelope
-----------------
Every ``benchmarks/bench_*.py`` script (and the sweep driver) writes
its ``BENCH_*.json`` through :func:`write_artifact`, which wraps the
script's result sections in one schema-versioned envelope — ``schema``,
``kind``, and a ``meta`` block (generation time, seed, cpu_count, git
revision, python version) — and serializes with sorted keys so
artifacts diff stably. :func:`read_artifact` is the mirror: it loads
any artifact, normalizing pre-envelope ("legacy") ``BENCH_*.json``
files into the same shape, so ``repro sweep compare`` can gate a fresh
run against any committed baseline regardless of vintage.

EXPERIMENTS.md generator
------------------------
``python -m repro.bench.record --output EXPERIMENTS.md`` executes the
intro experiment and Figures 4-8 on both datasets and renders one
markdown report with, per experiment: the paper's qualitative claim,
the measured series, and the shape-check verdicts. The hand-written
analysis in the repository's EXPERIMENTS.md wraps the output of this
module (see its header for the exact invocation used).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time

from .._util import available_cpu_count
from ..exceptions import InvalidParameterError, SerializationError
from . import experiments as exp
from .reporting import to_markdown

#: Envelope schema written by :func:`write_artifact`.
ARTIFACT_SCHEMA = "repro.bench/1"

#: Schema tag assigned to pre-envelope artifacts by :func:`read_artifact`.
LEGACY_SCHEMA = "repro.bench/0-legacy"

#: Top-level keys the envelope owns; result sections may not shadow them.
RESERVED_KEYS = ("schema", "kind", "meta")


def git_revision() -> str | None:
    """The working tree's short git revision, or ``None`` outside a
    repository (artifacts must still be writable from an sdist)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def make_meta(*, seed=None) -> dict:
    """The envelope ``meta`` block: where, when and from what this
    artifact was generated."""
    meta = {
        "generated_unix": round(time.time(), 3),  # lint: disable=wall-clock epoch timestamp, not a duration
        "cpu_count": available_cpu_count(),
        "python": platform.python_version(),
        "git_rev": git_revision(),
    }
    if seed is not None:
        meta["seed"] = int(seed)
    return meta


def make_artifact(results: dict, *, kind: str, seed=None) -> dict:
    """Wrap a script's result sections in the shared envelope."""
    if not isinstance(results, dict):
        raise InvalidParameterError(
            f"artifact results must be a dict, got {type(results).__name__}"
        )
    clashes = [key for key in RESERVED_KEYS if key in results]
    if clashes:
        raise InvalidParameterError(
            f"result sections may not use reserved envelope keys: {clashes}"
        )
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "kind": str(kind),
        "meta": make_meta(seed=seed),
    }
    payload.update(results)
    return payload


def write_artifact(path, results: dict, *, kind: str, seed=None) -> dict:
    """Write one enveloped, stably-ordered ``BENCH_*.json`` artifact.

    Keys are sorted at every level so two runs of the same benchmark
    differ only where measurements differ. Returns the full payload.
    """
    payload = make_artifact(results, kind=kind, seed=seed)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def _infer_kind(path) -> str:
    """``BENCH_<kind>.json`` → ``<kind>``; anything else → ``unknown``."""
    name = os.path.basename(str(path))
    match = re.fullmatch(r"BENCH_([A-Za-z0-9_]+)\.json", name)
    return match.group(1) if match else "unknown"


def read_artifact(path) -> dict:
    """Load a benchmark artifact, normalizing legacy files.

    Artifacts written before the envelope existed (no ``schema`` key)
    are wrapped in place: their sections become the payload body under
    ``schema = "repro.bench/0-legacy"`` with the kind inferred from the
    filename — so every committed ``BENCH_*.json`` ever produced reads
    through the one code path and can serve as a ``compare`` baseline.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SerializationError(f"cannot read artifact {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError(
            f"artifact {path} must hold a JSON object, got "
            f"{type(data).__name__}"
        )
    if "schema" in data:
        return data
    normalized = {
        "schema": LEGACY_SCHEMA,
        "kind": _infer_kind(path),
        "meta": {},
    }
    for key, value in data.items():
        if key not in normalized:
            normalized[key] = value
    return normalized

#: The paper's qualitative claim for each figure, quoted/condensed from
#: Section 6.2 — what the measured series are compared against.
PAPER_CLAIMS = {
    "fig4": (
        "TS-Index outperforms the rest in every setting; at least an "
        "order of magnitude faster than KV-Index and Sweepline; "
        "consistently better than iSAX; Sweepline flat in ε; all index "
        "methods degrade as ε grows."
    ),
    "fig5": (
        "Increasing l slightly slows Sweepline/KV-Index/iSAX but makes "
        "TS-Index *faster* (higher-level pruning, fewer leaves accessed)."
    ),
    "fig6": (
        "Per-subsequence z-normalization does not change the picture: "
        "TS-Index outperforms iSAX in all cases (KV-Index inapplicable)."
    ),
    "fig7": (
        "On raw (non-normalized) data TS-Index copes better than all "
        "the rest."
    ),
    "fig8a": (
        "KV-Index needs the least memory; iSAX two to three times less "
        "than TS-Index; all fit in main memory."
    ),
    "fig8b": (
        "KV-Index builds far faster than both tree indices (no splits, "
        "only means)."
    ),
    "intro": (
        "On EEG, a Chebyshev query returned 1,034 twins while the "
        "equivalent Euclidean query (radius ε·sqrt(l)) returned "
        "127,887 subsequences (~124x) with zero false negatives."
    ),
}


def figure_section(data: exp.FigureData) -> str:
    """One markdown section for an ε- or length-sweep figure."""
    rows = []
    for i, value in enumerate(data.sweep_values):
        row = {data.sweep_name: value}
        for method, series in data.series_ms.items():
            row[f"{method} (ms)"] = round(series[i], 2)
        rows.append(row)
    checks = exp.check_figure_shape(data)
    verdicts = "; ".join(
        f"{name}: {'PASS' if ok else 'FAIL'}" for name, ok in checks.items()
    )
    return (
        f"### {data.figure} / {data.dataset}\n\n"
        f"{to_markdown(rows)}\n\n"
        f"Shape checks: {verdicts}\n"
    )


def run_dataset(ctx: exp.ExperimentContext) -> list[str]:
    """All experiment sections for one dataset context."""
    sections = []

    intro = exp.run_intro(ctx)
    sections.append(
        f"### intro / {ctx.dataset}\n\n"
        + to_markdown(
            [
                {
                    "epsilon": intro["epsilon"],
                    "queries": intro["queries"],
                    "twin results": intro["twin_results"],
                    "euclidean results": intro["euclidean_results"],
                    "excess factor": round(intro["excess_factor"], 1),
                    "missed twins": intro["missed_twins"],
                }
            ]
        )
        + "\n"
    )

    for runner in (exp.run_figure4, exp.run_figure5, exp.run_figure6, exp.run_figure7):
        sections.append(figure_section(runner(ctx)))

    fig8 = exp.run_figure8(ctx)
    sections.append(
        f"### fig8 / {ctx.dataset}\n\n" + to_markdown(fig8["rows"]) + "\n"
    )
    return sections


def generate_markdown(contexts) -> str:
    """The full measured-results document body."""
    parts = ["## Measured results\n"]
    for ctx in contexts:
        parts.append(
            f"\n## Dataset `{ctx.dataset}` — scale {ctx.scale:g} "
            f"(n = {len(ctx.series)}), {ctx.query_count} queries of "
            f"length {exp.DEFAULT_LENGTH}\n"
        )
        parts.extend(run_dataset(ctx))
    parts.append("\n## Paper claims referenced above\n")
    for key, claim in PAPER_CLAIMS.items():
        parts.append(f"* **{key}** — {claim}")
    return "\n".join(parts) + "\n"


def main(argv=None) -> int:
    """CLI entry point for the record generator."""
    parser = argparse.ArgumentParser(
        description="Run all experiments and emit a markdown record."
    )
    parser.add_argument("--output", default="-", help="output path or - for stdout")
    parser.add_argument("--queries", type=int, default=30)
    parser.add_argument("--scale-insect", type=float, default=1.0)
    parser.add_argument("--scale-eeg", type=float, default=0.1)
    args = parser.parse_args(argv)

    contexts = [
        exp.ExperimentContext(
            dataset="insect", scale=args.scale_insect, query_count=args.queries
        ),
        exp.ExperimentContext(
            dataset="eeg", scale=args.scale_eeg, query_count=args.queries
        ),
    ]
    document = generate_markdown(contexts)
    if args.output == "-":
        sys.stdout.write(document)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
    return 0


if __name__ == "__main__":
    sys.exit(main())
