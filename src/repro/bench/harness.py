"""Experiment runner: time a query workload against built methods.

The paper reports *average response time per query in milliseconds* for
each method under each parameter setting. :func:`run_query_experiment`
reproduces exactly that protocol: run every query of the workload
through a built method, average the wall-clock time, and keep the
aggregate filter/pruning statistics (our hardware-independent addition).
"""

from __future__ import annotations

import dataclasses

from ..core.stats import QueryStats
from .timing import Timer
from .workloads import QueryWorkload


@dataclasses.dataclass
class MethodTiming:
    """Aggregated measurements for one method under one setting."""

    method: str
    #: average per-query wall-clock milliseconds.
    avg_query_ms: float
    #: total matches over the workload.
    total_matches: int
    #: aggregate structural counters over the workload.
    stats: QueryStats
    #: index construction seconds (0 for sweepline).
    build_seconds: float = 0.0

    def as_row(self) -> dict:
        """Flat dict for the report tables."""
        return {
            "method": self.method,
            "avg_query_ms": round(self.avg_query_ms, 3),
            "matches": self.total_matches,
            "candidates": self.stats.candidates,
            "nodes_visited": self.stats.nodes_visited,
            "nodes_pruned": self.stats.nodes_pruned,
            "build_s": round(self.build_seconds, 3),
        }


@dataclasses.dataclass
class ExperimentResult:
    """All method timings for one experiment setting."""

    label: str
    parameters: dict
    timings: list[MethodTiming]

    def as_rows(self) -> list[dict]:
        """One flat dict per method, parameters included."""
        rows = []
        for timing in self.timings:
            row = dict(self.parameters)
            row.update(timing.as_row())
            rows.append(row)
        return rows


def time_workload(
    method,
    workload: QueryWorkload,
    epsilon: float,
    *,
    search_options: dict | None = None,
) -> MethodTiming:
    """Run every workload query through ``method`` at ``epsilon``.

    ``search_options`` are forwarded to each ``search`` call — the
    harness uses ``{"verification": "per_candidate"}`` to reproduce the
    paper's cost model (candidates fetched one at a time, as from disk).
    """
    search_options = search_options or {}
    aggregate = QueryStats()
    total_matches = 0
    with Timer() as timer:
        for query in workload:
            result = method.search(query, epsilon, **search_options)
            total_matches += len(result)
            aggregate = aggregate.merge(result.stats)
    count = max(1, len(workload))
    return MethodTiming(
        method=getattr(method, "method_name", type(method).__name__.lower()),
        avg_query_ms=timer.milliseconds / count,
        total_matches=total_matches,
        stats=aggregate,
        build_seconds=method.build_stats.seconds,
    )


def run_query_experiment(
    label: str,
    methods: dict,
    workload: QueryWorkload,
    epsilon: float,
    parameters: dict | None = None,
    *,
    search_options: dict | None = None,
) -> ExperimentResult:
    """Time a workload against several built methods.

    ``methods`` maps display names to built method objects; the returned
    result preserves insertion order.
    """
    timings = []
    for name, method in methods.items():
        timing = time_workload(
            method, workload, epsilon, search_options=search_options
        )
        timing.method = name
        timings.append(timing)
    return ExperimentResult(
        label=label, parameters=dict(parameters or {}), timings=timings
    )
