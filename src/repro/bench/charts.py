"""ASCII line charts for experiment output.

The paper's Figures 4–7 are log-scale line charts of query time vs a
swept parameter, one line per method. ``render_figure`` draws the same
chart in a terminal so ``python -m repro.cli fig4`` shows the shape the
paper shows, not just a table.

The renderer is dependency-free: a character canvas with one marker per
method, a log (or linear) y-axis with labelled ticks, and a legend.
"""

from __future__ import annotations

import math

from ..exceptions import InvalidParameterError

#: Markers assigned to series in order (the paper uses distinct glyphs
#: per method; these are their terminal stand-ins).
MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.1f}"
    return f"{value:.2f}"


def render_chart(
    x_values,
    series: dict,
    *,
    height: int = 16,
    width: int | None = None,
    log_y: bool = True,
    y_label: str = "ms",
    x_label: str = "",
) -> str:
    """Render ``{name: [y...]}`` against ``x_values`` as an ASCII chart.

    ``log_y`` plots a log10 y-axis (the paper's presentation); values
    must then be positive. Column positions spread the x sweep evenly
    (the paper's ε grids are evenly spaced too).
    """
    if not series:
        raise InvalidParameterError("need at least one series")
    x_values = list(x_values)
    for name, values in series.items():
        if len(values) != len(x_values):
            raise InvalidParameterError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
        if log_y and any(v <= 0 for v in values):
            raise InvalidParameterError(
                f"series {name!r} has non-positive values on a log axis"
            )
    if height < 4:
        raise InvalidParameterError(f"height must be >= 4, got {height}")

    if width is None:
        width = max(48, 12 * len(x_values))

    def transform(value: float) -> float:
        return math.log10(value) if log_y else value

    lows = [transform(min(values)) for values in series.values()]
    highs = [transform(max(values)) for values in series.values()]
    low, high = min(lows), max(highs)
    if high - low < 1e-12:
        high = low + 1.0

    canvas = [[" "] * width for _ in range(height)]
    columns = [
        round(i * (width - 1) / max(1, len(x_values) - 1))
        for i in range(len(x_values))
    ]

    def row_of(value: float) -> int:
        fraction = (transform(value) - low) / (high - low)
        return (height - 1) - round(fraction * (height - 1))

    for marker, (name, values) in zip(MARKERS, series.items()):
        previous = None
        for column, value in zip(columns, values):
            row = row_of(value)
            canvas[row][column] = marker
            if previous is not None:
                _draw_segment(canvas, previous, (column, row), marker)
            previous = (column, row)

    # y-axis tick labels: top, middle, bottom (in original units).
    def untransform(level: float) -> float:
        return 10.0**level if log_y else level

    labels = {
        0: _format_tick(untransform(high)),
        height // 2: _format_tick(untransform((high + low) / 2)),
        height - 1: _format_tick(untransform(low)),
    }
    gutter = max(len(text) for text in labels.values()) + 1

    lines = []
    for row_index, row in enumerate(canvas):
        label = labels.get(row_index, "").rjust(gutter)
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)

    x_line = [" "] * width
    for column, x in zip(columns, x_values):
        text = str(x)
        start = min(max(0, column - len(text) // 2), width - len(text))
        for offset, char in enumerate(text):
            x_line[start + offset] = char
    lines.append(" " * gutter + "  " + "".join(x_line))

    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series.keys())
    )
    axis_note = f"y: {y_label}" + (" (log scale)" if log_y else "")
    if x_label:
        axis_note += f"   x: {x_label}"
    lines.append(f"{' ' * gutter}  {legend}")
    lines.append(f"{' ' * gutter}  {axis_note}")
    return "\n".join(lines)


def _draw_segment(canvas, start, stop, marker) -> None:
    """Light interpolation between consecutive points using ``.``."""
    (x0, y0), (x1, y1) = start, stop
    steps = max(abs(x1 - x0), abs(y1 - y0))
    if steps <= 1:
        return
    for step in range(1, steps):
        x = round(x0 + (x1 - x0) * step / steps)
        y = round(y0 + (y1 - y0) * step / steps)
        if canvas[y][x] == " ":
            canvas[y][x] = "."


def render_figure(data, *, height: int = 16) -> str:
    """Chart a :class:`~repro.bench.experiments.FigureData` panel."""
    return render_chart(
        list(data.sweep_values),
        {name: list(values) for name, values in data.series_ms.items()},
        height=height,
        log_y=True,
        y_label="avg query time (ms)",
        x_label=data.sweep_name,
    )
