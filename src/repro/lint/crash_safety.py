"""``crash-safety`` — keep :class:`SimulatedCrashError` un-swallowable.

The chaos harness's central guarantee is that an injected crash
(:class:`~repro.exceptions.SimulatedCrashError`, deliberately derived
from ``BaseException``) unwinds the process the way a real ``kill -9``
would — no retry loop or cleanup handler may absorb it and carry on.
Two handler shapes can break that, and one more silently breaks
durability:

* ``except BaseException`` / bare ``except:`` catches the simulated
  crash. Allowed only when the handler provably re-raises (a bare
  ``raise``, or ``raise <caught name>``) on every path — the
  annotate-and-reraise idiom;
* a tuple handler listing ``BaseException`` is the same hole;
* ``except``-and-``pass`` (a handler whose body does nothing) on a
  durability path (WAL / manifest / segment IO) or in a
  faults-instrumented module swallows injected IO errors, so the fault
  tests pass without exercising recovery.

Suppress a deliberate swallow with ``# lint: disable=crash-safety`` on
the ``except`` line and say why.
"""

from __future__ import annotations

import ast
import fnmatch

from .model import SourceFile, SourceTree, Violation

CHECKER = "crash-safety"

#: Tree-relative globs of the durability paths where a silent
#: ``except: pass`` is never acceptable.
DURABILITY_GLOBS = (
    "live/*.py",
    "persistence/*.py",
)


def _exception_names(node: ast.expr | None) -> list[str]:
    """Names of the exception types an ``except`` clause catches."""
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises the caught exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                isinstance(node.exc, ast.Name)
                and handler.name is not None
                and node.exc.id == handler.name
            ):
                return True
    return False


def _body_is_noop(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing (``pass``, ``...``, or a
    bare string/constant expression)."""
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue
        return False
    return True


def _is_instrumented(file: SourceFile) -> bool:
    """Whether the module contains a ``failpoint(...)`` call site."""
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "failpoint":
                return True
    return False


def _on_durability_path(file: SourceFile) -> bool:
    return any(fnmatch.fnmatch(file.rel, glob) for glob in DURABILITY_GLOBS)


def check(tree: SourceTree) -> list[Violation]:
    """Run the crash-safety audit over ``tree``."""
    violations = []
    for file in tree:
        swallow_sensitive = _on_durability_path(file) or _is_instrumented(file)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _exception_names(node.type)
            catches_everything = node.type is None or "BaseException" in caught
            if catches_everything and not _reraises(node):
                what = (
                    "bare `except:`" if node.type is None
                    else "`except BaseException`"
                )
                violations.append(
                    Violation(
                        CHECKER,
                        file.rel,
                        node.lineno,
                        f"{what} swallows SimulatedCrashError, breaking "
                        "the kill-and-recover contract; re-raise "
                        "unconditionally or narrow the handler",
                    )
                )
                continue
            if (
                swallow_sensitive
                and node.type is not None
                and _body_is_noop(node)
            ):
                violations.append(
                    Violation(
                        CHECKER,
                        file.rel,
                        node.lineno,
                        f"except-and-pass on {' and '.join(caught) or 'a handler'} "
                        "in a durability/faults-instrumented module "
                        "silently absorbs injected faults; handle the "
                        "error or let it propagate",
                    )
                )
    return violations
