"""repro.lint — project-invariant static analysis for the serving stack.

The stack's exactness contract (byte-identical answers across planes,
executors, and crash/recover cycles) rests on conventions that used to
live in reviewers' memories and one grep-based test: failpoint site
names must match the registry, nothing may swallow
``SimulatedCrashError``, lock-guarded state stays behind its lock,
``prepare_query`` keeps a single call site, and the public surface stays
documented. This package codifies each of those as a named, AST-based,
individually-suppressable checker.

Run it as ``repro lint`` (CI gates on the exit code) or from code::

    from repro.lint import run_lint

    report = run_lint()              # the installed repro tree
    assert report.ok, report.format_text()

    report = run_lint(checks=["single-call-site"])

Checker catalog, suppression syntax, and the recipe for adding a new
invariant live in the README ("Static analysis & typing") and in
:mod:`repro.lint.runner`.
"""

from __future__ import annotations

from .model import (
    SourceFile,
    SourceTree,
    Violation,
    load_tree,
    tree_from_sources,
)
from .runner import CHECKERS, Checker, LintReport, run_lint

__all__ = [
    "CHECKERS",
    "Checker",
    "LintReport",
    "SourceFile",
    "SourceTree",
    "Violation",
    "load_tree",
    "run_lint",
    "tree_from_sources",
]
