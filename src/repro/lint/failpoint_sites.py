"""``failpoint-sites`` — audit failpoint call sites against the registry.

The failpoint framework (:mod:`repro.faults.failpoints`) is name-based:
``arm("wal.append", ...)`` and the ``failpoint("wal.append")`` call site
only meet at runtime, through a string. Renaming a call site therefore
silently turns every armed chaos test for it into a no-op — the test
still passes, it just stops injecting. This checker makes the contract
static, in both directions, against the canonical
:data:`repro.faults.failpoints.SITES` registry:

* every ``failpoint("<name>", ...)`` literal in the tree must name a
  registered site;
* every registered site must still have at least one call site;
* a call site whose name is not a string literal cannot be audited and
  is itself a violation.
"""

from __future__ import annotations

import ast

from .model import SourceFile, SourceTree, Violation, call_name

CHECKER = "failpoint-sites"

#: Module that must define the ``SITES`` registry (tree-relative).
REGISTRY_MODULE = "faults/failpoints.py"


def _registry_sites(file: SourceFile) -> tuple[set[str], int] | None:
    """Parse ``SITES = frozenset({...})`` out of the registry module.

    Returns ``(site_names, lineno)`` or ``None`` when no statically
    readable registry assignment exists.
    """
    for node in file.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "SITES"
            for target in node.targets
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and len(value.args) == 1
        ):
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            names = set()
            for element in value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                names.add(element.value)
            return names, node.lineno
    return None


def _call_sites(tree: SourceTree):
    """Yield ``(file, node, site_or_None)`` for every ``failpoint(...)``
    call in the tree (``site`` is ``None`` for non-literal names)."""
    for file in tree:
        if file.rel == REGISTRY_MODULE:
            # The framework module itself defines ``failpoint`` and
            # mentions sites in docs, not as instrumented call sites.
            continue
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) != "failpoint":
                continue
            if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                node.args[0].value, str
            ):
                yield file, node, node.args[0].value
            else:
                yield file, node, None


def check(tree: SourceTree) -> list[Violation]:
    """Run the failpoint-site audit over ``tree``."""
    violations = []
    registry_file = tree.get(REGISTRY_MODULE)
    registry = _registry_sites(registry_file) if registry_file else None
    if registry is None:
        violations.append(
            Violation(
                CHECKER,
                REGISTRY_MODULE,
                0,
                "no statically readable `SITES = frozenset({...})` "
                "registry found; the failpoint-site audit cannot run",
            )
        )
        return violations
    sites, registry_line = registry

    used: set[str] = set()
    for file, node, site in _call_sites(tree):
        if site is None:
            violations.append(
                Violation(
                    CHECKER,
                    file.rel,
                    node.lineno,
                    "failpoint site name must be a string literal so the "
                    "site audit can match it against the registry",
                )
            )
            continue
        used.add(site)
        if site not in sites:
            violations.append(
                Violation(
                    CHECKER,
                    file.rel,
                    node.lineno,
                    f"unknown failpoint site {site!r}: not in "
                    "repro.faults.failpoints.SITES — armed tests for the "
                    "old name would silently no-op; register the site or "
                    "fix the name",
                )
            )
    for site in sorted(sites - used):
        violations.append(
            Violation(
                CHECKER,
                REGISTRY_MODULE,
                registry_line,
                f"registered failpoint site {site!r} has no call site in "
                "the tree; remove the registry entry or restore the call",
            )
        )
    return violations
