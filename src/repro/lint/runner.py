"""The checker registry and lint entry point.

Adding a new invariant:

1. write ``check(tree: SourceTree) -> list[Violation]`` in a module
   under :mod:`repro.lint` (anchor each violation to the offending
   file/line and say what the fix is);
2. register it in :data:`CHECKERS` with a one-line description;
3. add positive + negative fixture cases to ``tests/test_lint.py``;
4. fix (or explicitly suppress, with a reason) every violation the new
   checker finds in the real tree — the meta-test asserts ``repro
   lint`` stays clean.

Suppressions are line-scoped: ``# lint: disable=<checker>`` on the
flagged line, applied centrally here so every checker gets them for
free.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from ..exceptions import InvalidParameterError
from . import crash_safety, failpoint_sites, layering, lock_discipline, public_api
from .model import SourceTree, Violation, load_tree


@dataclasses.dataclass(frozen=True)
class Checker:
    """One registered invariant checker."""

    #: Checker name (the ``--check`` / suppression handle).
    name: str
    #: One-line description shown by ``repro lint --list``.
    description: str
    #: ``check(tree) -> [Violation]`` implementation.
    check: object

    def run(self, tree: SourceTree) -> list[Violation]:
        """Run this checker over ``tree``."""
        return self.check(tree)  # type: ignore[operator]


#: Every registered checker, by name (iteration order = run order).
CHECKERS: dict[str, Checker] = {
    checker.name: checker
    for checker in (
        Checker(
            failpoint_sites.CHECKER,
            "failpoint() literals and faults.failpoints.SITES agree both ways",
            failpoint_sites.check,
        ),
        Checker(
            crash_safety.CHECKER,
            "no handler can swallow SimulatedCrashError or injected faults",
            crash_safety.check,
        ),
        Checker(
            lock_discipline.CHECKER,
            "guarded-by(lock) attributes are only mutated holding the lock",
            lock_discipline.check,
        ),
        Checker(
            layering.SINGLE_CALL_SITE,
            "restricted methods (source.prepare_query) keep one call site",
            layering.check_single_call_site,
        ),
        Checker(
            layering.CPU_COUNT,
            "os.cpu_count() is banned outside available_cpu_count()",
            layering.check_cpu_count,
        ),
        Checker(
            layering.BENCH_WRITES,
            "BENCH_*.json writes go through repro.bench.record",
            layering.check_bench_writes,
        ),
        Checker(
            layering.WALL_CLOCK,
            "time.time() only where an epoch timestamp is explicitly meant",
            layering.check_wall_clock,
        ),
        Checker(
            public_api.CHECKER,
            "root exports are documented and have exactly one home __all__",
            public_api.check,
        ),
    )
}


@dataclasses.dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    #: Checker names that ran, in run order.
    checks: tuple[str, ...]
    #: Surviving (non-suppressed) violations, sorted by location.
    violations: tuple[Violation, ...]
    #: Number of files linted.
    files: int
    #: Number of violations silenced by `# lint: disable=...` comments.
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def format_text(self) -> str:
        """Editor-clickable report, one line per violation plus a tally."""
        lines = [violation.format() for violation in self.violations]
        lines.append(
            f"repro lint: {len(self.violations)} violation(s) "
            f"({self.suppressed} suppressed) across {self.files} file(s), "
            f"checks: {', '.join(self.checks)}"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready summary (the ``--format json`` payload)."""
        return {
            "schema": "repro.lint/1",
            "ok": self.ok,
            "checks": list(self.checks),
            "files": self.files,
            "suppressed": self.suppressed,
            "violations": [
                violation.as_dict() for violation in self.violations
            ],
        }


def default_root() -> Path:
    """The package's own source tree (what ``repro lint`` checks)."""
    return Path(__file__).resolve().parent.parent


def select_checkers(checks=None) -> list[Checker]:
    """Resolve ``--check`` selections against the registry."""
    if checks is None:
        return list(CHECKERS.values())
    selected = []
    for name in checks:
        checker = CHECKERS.get(name)
        if checker is None:
            raise InvalidParameterError(
                f"unknown checker {name!r}; available: "
                f"{', '.join(sorted(CHECKERS))}"
            )
        selected.append(checker)
    return selected


def run_lint(
    root: Path | str | None = None,
    *,
    checks=None,
    tree: SourceTree | None = None,
) -> LintReport:
    """Run the selected checkers and return a :class:`LintReport`.

    ``root`` defaults to the installed ``repro`` package tree; pass
    ``tree`` directly to lint an in-memory fixture
    (:func:`repro.lint.model.tree_from_sources`).
    """
    if tree is None:
        tree = load_tree(Path(root) if root is not None else default_root())
    selected = select_checkers(checks)
    kept: list[Violation] = []
    suppressed = 0
    for checker in selected:
        for violation in checker.run(tree):
            file = tree.get(violation.path)
            if file is not None and file.suppressed(
                violation.line, violation.checker
            ):
                suppressed += 1
                continue
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.checker, v.message))
    return LintReport(
        checks=tuple(checker.name for checker in selected),
        violations=tuple(kept),
        files=len(tree),
        suppressed=suppressed,
    )
