"""Data model for the project linter: sources, violations, suppressions.

The linter operates on a :class:`SourceTree` — every ``*.py`` file under
one package root, parsed once into an AST and scanned once for the
project's structured lint comments:

* ``# lint: disable=<checker>[,<checker>...]`` on a line suppresses the
  named checkers' violations anchored to that line (trailing prose after
  the names is allowed and encouraged: say *why*);
* ``# lint: guarded-by(<lock>)`` on an attribute assignment declares the
  attribute lock-guarded (see :mod:`repro.lint.lock_discipline`);
* ``# lint: holds(<lock>)`` on a ``def`` line declares that every caller
  of the method already holds ``<lock>``.

Checkers never read these comments directly — they ask the
:class:`SourceFile` — so the comment grammar lives in exactly one place.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path

#: ``# lint: disable=name-a,name-b  optional prose why``
_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,-]+)")
#: ``# lint: guarded-by(_lock)``
_GUARDED_RE = re.compile(r"#\s*lint:\s*guarded-by\((\w+)\)")
#: ``# lint: holds(_lock)``
_HOLDS_RE = re.compile(r"#\s*lint:\s*holds\((\w+)\)")


@dataclasses.dataclass(frozen=True)
class Violation:
    """One checker finding, anchored to a file and line."""

    #: Name of the checker that produced the finding.
    checker: str
    #: Path relative to the linted tree root (posix separators).
    path: str
    #: 1-based line number (0 for tree-level findings).
    line: int
    #: Human-readable description with the expected fix.
    message: str

    def format(self) -> str:
        """``path:line: [checker] message`` — editor-clickable."""
        return f"{self.path}:{self.line}: [{self.checker}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class SourceFile:
    """One parsed source file plus its structured lint comments."""

    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=rel)
        #: line -> frozenset of checker names disabled on that line.
        self.disabled: dict[int, frozenset[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _DISABLE_RE.search(line)
            if match is not None:
                names = frozenset(
                    name.strip()
                    for name in match.group(1).split(",")
                    if name.strip()
                )
                self.disabled[number] = names

    def line(self, number: int) -> str:
        """The 1-based source line (empty string out of range)."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def suppressed(self, number: int, checker: str) -> bool:
        """Whether ``checker`` is disabled on line ``number``."""
        return checker in self.disabled.get(number, frozenset())

    def guarded_by(self, number: int) -> str | None:
        """The lock name declared by ``guarded-by(...)`` on the line."""
        match = _GUARDED_RE.search(self.line(number))
        return match.group(1) if match else None

    def holds(self, number: int) -> str | None:
        """The lock name declared by ``holds(...)`` on the line."""
        match = _HOLDS_RE.search(self.line(number))
        return match.group(1) if match else None

    def __repr__(self) -> str:
        return f"SourceFile({self.rel!r})"


class SourceTree:
    """Every parsed source file under one package root."""

    def __init__(self, root: Path, files: list[SourceFile]):
        self.root = root
        self.files = sorted(files, key=lambda f: f.rel)
        self._by_rel = {file.rel: file for file in self.files}

    def get(self, rel: str) -> SourceFile | None:
        """The file at tree-relative posix path ``rel``, or ``None``."""
        return self._by_rel.get(rel)

    def __iter__(self):
        return iter(self.files)

    def __len__(self) -> int:
        return len(self.files)

    def __repr__(self) -> str:
        return f"SourceTree({str(self.root)!r}, files={len(self)})"


def load_tree(root: Path) -> SourceTree:
    """Parse every ``*.py`` under ``root`` into a :class:`SourceTree`.

    ``__pycache__`` directories are skipped; a file that fails to parse
    raises its ``SyntaxError`` (a tree that does not parse cannot be
    meaningfully linted).
    """
    root = Path(root).resolve()
    files = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        files.append(SourceFile(rel, path.read_text()))
    return SourceTree(root, files)


def tree_from_sources(sources: dict[str, str]) -> SourceTree:
    """Build an in-memory tree from ``{rel_path: code}`` (test fixtures)."""
    files = [SourceFile(rel, text) for rel, text in sources.items()]
    return SourceTree(Path("<memory>"), files)


def call_name(node: ast.Call) -> str | None:
    """The called attribute/function name of ``node`` (``None`` when the
    callee is not a plain name or attribute access)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def self_attribute(node: ast.AST) -> str | None:
    """``X`` when ``node`` is the expression ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
