"""``public-api`` — completeness of the package's public surface.

Everything exported from the package root (``repro.__init__.__all__``)
must be documented and have exactly one canonical home:

* the root ``__all__`` holds no duplicates and only names the module
  actually binds (imports or defines);
* every exported name resolves to a definition somewhere in the package,
  and at least one definition carries a docstring (constants bound by
  assignment are exempt — they cannot carry one);
* every exported name appears in **exactly one** non-root ``__all__`` —
  its canonical home — unless it is defined in the root module itself.
  Zero homes means the name is reachable only through the root import
  (undiscoverable from its subsystem); two means two subsystems both
  claim it and ``from repro.x import *`` surfaces become ambiguous.
"""

from __future__ import annotations

import ast
import re

from .model import SourceFile, SourceTree, Violation

CHECKER = "public-api"

ROOT_MODULE = "__init__.py"

_DUNDER_RE = re.compile(r"\A__\w+__\Z")


def _module_all(file: SourceFile) -> tuple[list[str], int] | None:
    """The module's literal ``__all__`` list and its line, if present."""
    for node in file.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)) and all(
            isinstance(element, ast.Constant) and isinstance(element.value, str)
            for element in value.elts
        ):
            return [element.value for element in value.elts], node.lineno
        return None
    return None


def _bound_names(file: SourceFile) -> set[str]:
    """Top-level names the module binds (imports, defs, assignments)."""
    names: set[str] = set()
    for node in file.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for element in ast.walk(target):
                    if isinstance(element, ast.Name):
                        names.add(element.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _definitions(tree: SourceTree) -> dict[str, list[tuple[str, int, bool, bool]]]:
    """``name -> [(rel, line, documentable, has_docstring)]`` for every
    top-level definition in the tree."""
    definitions: dict[str, list[tuple[str, int, bool, bool]]] = {}
    for file in tree:
        for node in file.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                definitions.setdefault(node.name, []).append(
                    (file.rel, node.lineno, True, bool(ast.get_docstring(node)))
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        definitions.setdefault(target.id, []).append(
                            (file.rel, node.lineno, False, False)
                        )
    return definitions


def check(tree: SourceTree) -> list[Violation]:
    """Run the public-API completeness audit over ``tree``."""
    violations = []
    root = tree.get(ROOT_MODULE)
    if root is None:
        return [
            Violation(
                CHECKER, ROOT_MODULE, 0,
                "no package root __init__.py in the tree; the public-API "
                "audit cannot run",
            )
        ]
    parsed = _module_all(root)
    if parsed is None:
        return [
            Violation(
                CHECKER, ROOT_MODULE, 1,
                "package root must declare a literal `__all__` list for "
                "the public-API audit",
            )
        ]
    exported, all_line = parsed

    seen: set[str] = set()
    for name in exported:
        if name in seen:
            violations.append(
                Violation(
                    CHECKER, ROOT_MODULE, all_line,
                    f"duplicate __all__ entry {name!r}",
                )
            )
        seen.add(name)

    bound = _bound_names(root)
    definitions = _definitions(tree)
    homes: dict[str, list[str]] = {}
    for file in tree:
        if file.rel == ROOT_MODULE:
            continue
        module_all = _module_all(file)
        if module_all is None:
            continue
        for name in module_all[0]:
            homes.setdefault(name, []).append(file.rel)

    root_defined = {
        name
        for name, places in definitions.items()
        if any(rel == ROOT_MODULE for rel, _, _, _ in places)
    }

    for name in sorted(seen):
        if _DUNDER_RE.match(name):
            continue
        if name not in bound:
            violations.append(
                Violation(
                    CHECKER, ROOT_MODULE, all_line,
                    f"__all__ exports {name!r} but the root module never "
                    "binds it (missing import?)",
                )
            )
            continue
        places = definitions.get(name, [])
        if not places:
            violations.append(
                Violation(
                    CHECKER, ROOT_MODULE, all_line,
                    f"exported name {name!r} has no top-level definition "
                    "anywhere in the package",
                )
            )
            continue
        documentable = [place for place in places if place[2]]
        if documentable and not any(has_doc for _, _, _, has_doc in documentable):
            rel, line, _, _ = documentable[0]
            violations.append(
                Violation(
                    CHECKER, rel, line,
                    f"public export {name!r} has no docstring",
                )
            )
        name_homes = homes.get(name, [])
        if name in root_defined:
            continue
        if len(name_homes) == 0:
            violations.append(
                Violation(
                    CHECKER, ROOT_MODULE, all_line,
                    f"exported name {name!r} appears in no module "
                    "__all__; give it a canonical home (usually its "
                    "subsystem's __init__)",
                )
            )
        elif len(name_homes) > 1:
            violations.append(
                Violation(
                    CHECKER, ROOT_MODULE, all_line,
                    f"exported name {name!r} appears in "
                    f"{len(name_homes)} module __all__ lists "
                    f"({', '.join(sorted(name_homes))}); exactly one "
                    "must be its canonical home",
                )
            )
    return violations
