"""``lock-discipline`` — guarded attributes stay behind their lock.

Thread-shared state in the serving stack (metrics leaves, the engine's
query counters, the live plane's buffer bookkeeping) is guarded by an
instance lock; correctness depends on *every* mutation happening with
the lock held, which nothing enforces when a new code path is added.
This checker makes the guard declarative:

* declare a guarded attribute with ``# lint: guarded-by(_lock)`` on its
  assignment (typically in ``__init__``) or on a class-level annotation;
* every other mutation of ``self.<attr>`` — assignment, augmented
  assignment, item/field store, or a mutating method call
  (``.append()``, ``.pop()``, ...) — must then sit lexically inside
  ``with self._lock:`` (the declared lock);
* a method whose *callers* hold the lock is annotated
  ``# lint: holds(_lock)`` on its ``def`` line — the constructor-helper
  and locked-private-method idiom;
* ``__init__`` itself is exempt: the object is not yet shared.

Lexical analysis cannot see every locking scheme (lock handoffs,
ExitStack acquisition); annotate those methods with ``holds(...)`` or
suppress single lines with ``# lint: disable=lock-discipline``.
"""

from __future__ import annotations

import ast

from .model import SourceFile, SourceTree, Violation, self_attribute

CHECKER = "lock-discipline"

#: Method calls treated as mutations of the receiving attribute.
MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


def _guarded_attributes(cls: ast.ClassDef, file: SourceFile) -> dict[str, str]:
    """``{attribute: lock}`` declared via ``guarded-by`` in the class."""
    guarded: dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            continue
        lock = file.guarded_by(node.lineno)
        if lock is not None:
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = self_attribute(target)
                if attr is not None:
                    guarded[attr] = lock
                elif isinstance(target, ast.Name):
                    # Class-level annotated declaration.
                    guarded[target.id] = lock
    return guarded


def _store_root(node: ast.AST) -> str | None:
    """The ``self.<attr>`` root of a store target / call receiver.

    ``self.x``, ``self.x[k]``, ``self.x.field`` and deeper chains all
    resolve to ``x``; anything not rooted at ``self`` resolves to
    ``None``.
    """
    current = node
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        attr = self_attribute(current)
        if attr is not None:
            return attr
        current = current.value
    return None


class _MethodAuditor(ast.NodeVisitor):
    """Walk one method body tracking which locks are lexically held."""

    def __init__(self, guarded: dict[str, str], held: frozenset[str]):
        self.guarded = guarded
        self.held = held
        self.findings: list[tuple[int, str, str]] = []

    def _check(self, node: ast.AST, attr: str | None) -> None:
        if attr is None:
            return
        lock = self.guarded.get(attr)
        if lock is not None and lock not in self.held:
            self.findings.append((node.lineno, attr, lock))

    def visit_With(self, node: ast.With) -> None:
        acquired = set()
        for item in node.items:
            attr = self_attribute(item.context_expr)
            if attr is not None:
                acquired.add(attr)
        if acquired:
            inner = _MethodAuditor(self.guarded, self.held | acquired)
            for statement in node.body:
                inner.visit(statement)
            self.findings.extend(inner.findings)
        else:
            self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(node, target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node, node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node, node.target)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check(node, _store_root(target))

    def _check_target(self, node: ast.AST, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(node, element)
            return
        self._check(node, _store_root(target))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
            self._check(node, _store_root(func.value))
        self.generic_visit(node)


def check(tree: SourceTree) -> list[Violation]:
    """Run the lock-discipline audit over ``tree``."""
    violations = []
    for file in tree:
        for cls in [
            node for node in ast.walk(file.tree)
            if isinstance(node, ast.ClassDef)
        ]:
            guarded = _guarded_attributes(cls, file)
            if not guarded:
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name == "__init__":
                    continue
                held = file.holds(method.lineno)
                auditor = _MethodAuditor(
                    guarded,
                    frozenset({held}) if held is not None else frozenset(),
                )
                for statement in method.body:
                    auditor.visit(statement)
                for lineno, attr, lock in auditor.findings:
                    violations.append(
                        Violation(
                            CHECKER,
                            file.rel,
                            lineno,
                            f"attribute {attr!r} is declared "
                            f"guarded-by({lock}) but {method.name}() "
                            f"mutates it without holding self.{lock}; "
                            f"wrap the mutation in `with self.{lock}:` or "
                            f"annotate the method `# lint: holds({lock})`",
                        )
                    )
    return violations
