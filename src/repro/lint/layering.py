"""Layering rules: single-call-site, cpu-count, bench-writes, wall-clock.

Four small checkers that pin conventions the stack's exactness and
benchmarking contracts depend on:

* ``single-call-site`` — methods that must have exactly one caller in
  the library. Today: ``source.prepare_query`` may be called only from
  ``query/spec.py`` (the pipeline's one validation + domain-mapping
  site; the conformance suites assume every plane prepares queries
  identically). The rule table is data — add a row to pin a new method.
* ``cpu-count`` — ``os.cpu_count()`` reports the machine, not the
  affinity mask this process may run on; every pool must size itself
  with :func:`repro._util.available_cpu_count` instead.
* ``bench-writes`` — ``BENCH_*.json`` artifacts must be written through
  :func:`repro.bench.record.write_artifact` (schema-versioned envelope,
  stable ordering); a direct ``open``/``json.dump`` against a BENCH
  path bypasses the envelope and breaks baseline comparison.
* ``wall-clock`` — ``time.time()`` is not monotonic: a clock step turns
  a duration computed from it negative (or huge). Durations and spans
  must use ``time.perf_counter()``; genuine epoch timestamps (artifact
  metadata, trace start times) carry
  ``# lint: disable=wall-clock <why>``.
"""

from __future__ import annotations

import ast
import dataclasses
import re

from .model import SourceFile, SourceTree, Violation, call_name

SINGLE_CALL_SITE = "single-call-site"
CPU_COUNT = "cpu-count"
BENCH_WRITES = "bench-writes"
WALL_CLOCK = "wall-clock"


@dataclasses.dataclass(frozen=True)
class CallSiteRule:
    """One restricted method and the files allowed to call it."""

    #: Method / function name whose calls are restricted.
    name: str
    #: Tree-relative paths (or path prefixes ending in ``/``) allowed to
    #: contain call sites — the canonical caller plus the definition.
    allowed: tuple[str, ...]
    #: Why the restriction exists (quoted in the violation message).
    reason: str


#: The single-call-site rule table.
CALL_SITE_RULES = (
    CallSiteRule(
        name="prepare_query",
        allowed=("query/spec.py", "core/windows.py"),
        reason=(
            "query preparation (validation + raw→index domain mapping) "
            "must flow through repro.query.spec.prepare_values so every "
            "plane prepares queries identically"
        ),
    ),
)

#: Files allowed to call ``os.cpu_count`` (the shim's own home).
CPU_COUNT_ALLOWED = ("_util.py",)

#: Files allowed to write BENCH artifacts directly (the envelope itself).
BENCH_WRITE_ALLOWED = ("bench/record.py",)

_BENCH_RE = re.compile(r"BENCH_\w+\.json\Z")

#: Callables that constitute a "write" for the bench-writes rule.
_WRITE_CALLS = frozenset({"open", "dump", "write_text", "write_bytes"})


def _allowed(file: SourceFile, allowed: tuple[str, ...]) -> bool:
    return any(
        file.rel == entry or (entry.endswith("/") and file.rel.startswith(entry))
        for entry in allowed
    )


def check_single_call_site(tree: SourceTree) -> list[Violation]:
    """Enforce the :data:`CALL_SITE_RULES` table."""
    rules = {rule.name: rule for rule in CALL_SITE_RULES}
    violations = []
    for file in tree:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            rule = rules.get(call_name(node) or "")
            if rule is None or _allowed(file, rule.allowed):
                continue
            violations.append(
                Violation(
                    SINGLE_CALL_SITE,
                    file.rel,
                    node.lineno,
                    f"call to {rule.name}() outside "
                    f"{' / '.join(rule.allowed)}: {rule.reason}",
                )
            )
    return violations


def check_cpu_count(tree: SourceTree) -> list[Violation]:
    """Ban ``os.cpu_count()`` outside the ``available_cpu_count`` shim."""
    violations = []
    for file in tree:
        if _allowed(file, CPU_COUNT_ALLOWED):
            continue
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call) and call_name(node) == "cpu_count":
                violations.append(
                    Violation(
                        CPU_COUNT,
                        file.rel,
                        node.lineno,
                        "cpu_count() ignores the CPU affinity mask; use "
                        "repro._util.available_cpu_count() so pools size "
                        "to the CPUs this process may actually run on",
                    )
                )
    return violations


def check_bench_writes(tree: SourceTree) -> list[Violation]:
    """Ban direct writes of ``BENCH_*.json`` outside the envelope."""
    violations = []
    for file in tree:
        if _allowed(file, BENCH_WRITE_ALLOWED):
            continue
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in _WRITE_CALLS:
                continue
            # Scan the whole call — the BENCH literal may sit in an
            # argument (open("BENCH_x.json")) or in the receiver chain
            # (Path("BENCH_x.json").write_text(...)).
            literals = [
                child.value
                for child in ast.walk(node)
                if isinstance(child, ast.Constant) and isinstance(child.value, str)
            ]
            if any(_BENCH_RE.search(value) for value in literals):
                violations.append(
                    Violation(
                        BENCH_WRITES,
                        file.rel,
                        node.lineno,
                        "direct write of a BENCH_*.json artifact bypasses "
                        "the schema-versioned envelope; route it through "
                        "repro.bench.record.write_artifact",
                    )
                )
    return violations


def _imports_time_name(file: SourceFile) -> bool:
    """Whether the module does ``from time import time``."""
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time" and alias.asname in (None, "time"):
                    return True
    return False


def check_wall_clock(tree: SourceTree) -> list[Violation]:
    """Ban ``time.time()`` without an explicit wall-clock suppression."""
    violations = []
    for file in tree:
        bare_time = _imports_time_name(file)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_wall = (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (
                bare_time
                and isinstance(func, ast.Name)
                and func.id == "time"
            )
            if is_wall:
                violations.append(
                    Violation(
                        WALL_CLOCK,
                        file.rel,
                        node.lineno,
                        "time.time() is wall-clock and not monotonic; use "
                        "time.perf_counter() for durations/spans, or mark "
                        "a genuine epoch timestamp with "
                        "`# lint: disable=wall-clock <why>`",
                    )
                )
    return violations
