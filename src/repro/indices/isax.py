"""iSAX index adapted to twin subsequence search (Section 4.2).

Structure follows Shieh & Keogh's iSAX: the root fans out to one child
per base-cardinality SAX word; an overflowing leaf splits by promoting
one more bit of one segment's symbol, producing two children. Every node
therefore covers, per segment, a contiguous range of mean values — and
the paper's twin filter applies: if ``Q`` has a twin below a node, the
query's per-segment PAA mean must lie within ``ε`` of that node's range
in *every* segment (combining the two observations of Section 3.1).

Construction is insertion-based, as in the original (iSAX 2.0 bulk
loading is left to TS-Index's bulk loader, whose role it mirrors); the
initial PAA/SAX summarization of all windows is vectorized.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .._util import (
    POSITION_DTYPE,
    check_non_negative,
    check_positive_int,
)
from ..core.normalization import Normalization
from ..core.stats import BuildStats, QueryStats, SearchResult
from ..core.verification import verify
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError
from ..query.registration import register_plane
from ..query.spec import prepare_values
from ..query.varlength import is_prefix_query
from .base import SubsequenceIndex
from .paa import paa_matrix, paa_transform
from .sax import SAXAlphabet


@dataclasses.dataclass(frozen=True)
class ISAXParams:
    """Construction parameters for :class:`ISAXIndex`.

    Paper defaults (Section 6.1): ``segments = 10`` (Table 2 bold),
    ``leaf_capacity = 10,000``. ``base_bits`` is the root fan-out
    cardinality (``2^base_bits`` symbols per segment at the root);
    ``max_bits`` caps symbol refinement (cardinality ``2^max_bits``).
    """

    segments: int = 10
    leaf_capacity: int = 10_000
    base_bits: int = 1
    max_bits: int = 8

    def __post_init__(self):
        check_positive_int(self.segments, name="segments")
        check_positive_int(self.leaf_capacity, name="leaf_capacity")
        check_positive_int(self.base_bits, name="base_bits")
        check_positive_int(self.max_bits, name="max_bits")
        if self.base_bits > self.max_bits:
            raise InvalidParameterError(
                f"base_bits={self.base_bits} exceeds max_bits={self.max_bits}"
            )


class _ISAXNode:
    """One iSAX node: an iSAX word (symbol + bit-count per segment) and
    either stored positions (leaf) or a binary split (internal)."""

    __slots__ = ("word", "bits", "low", "high", "positions", "split_segment", "children")

    def __init__(self, word: np.ndarray, bits: np.ndarray, alphabet: SAXAlphabet):
        self.word = word
        self.bits = bits
        self.low, self.high = alphabet.word_ranges(word, bits)
        self.positions: list[int] | None = []
        self.split_segment: int | None = None
        self.children: dict[int, "_ISAXNode"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.positions is not None


@register_plane(
    "isax",
    paper=True,
    summary="SAX-word tree with PAA pruning (Section 4.2)",
)
class ISAXIndex(SubsequenceIndex):
    """Tree over SAX words of all windows, adapted for twin search.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.indices import ISAXIndex
    >>> rng = np.random.default_rng(11)
    >>> series = np.cumsum(rng.normal(size=4000))
    >>> index = ISAXIndex.build(series, length=80)
    >>> query = index.source.window_block(42, 43)[0]
    >>> 42 in index.search(query, epsilon=0.25).positions
    True
    """

    method_name = "isax"

    def __init__(
        self,
        source: WindowSource,
        params: ISAXParams | None = None,
        alphabet: SAXAlphabet | None = None,
    ):
        params = params or ISAXParams()
        if params.segments > source.length:
            raise InvalidParameterError(
                f"segments={params.segments} exceeds window length "
                f"{source.length}"
            )
        self._source = source
        self._params = params
        self._alphabet = alphabet
        self._paa: np.ndarray | None = None
        self._sax: np.ndarray | None = None
        self._root_children: dict[tuple, _ISAXNode] = {}
        self._build_stats = BuildStats()
        # PAA means come from cumulative sums over the *whole series*:
        # the indexed matrix and the query transform round differently,
        # with cumsum error accumulating over all n prefix terms — so
        # identical windows at distant positions can disagree by up to
        # ~n·eps·peak, not just a few window-length ulps. The
        # per-segment filter is padded by this slack to avoid losing
        # exact twins at tiny epsilons (see tests/test_properties.py);
        # verification is exact, so the padding only admits candidates.
        peak = float(np.max(np.abs(source.values)))
        self._paa_slack = (
            8.0
            * np.finfo(float).eps
            * max(1e-300, peak)
            * max(source.length, len(source.values))
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        series,
        length: int,
        *,
        normalization=Normalization.GLOBAL,
        params: ISAXParams | None = None,
        alphabet: SAXAlphabet | None = None,
    ) -> "ISAXIndex":
        """Build over all ``length``-windows of ``series``."""
        return cls.from_source(
            WindowSource(series, length, normalization),
            params=params,
            alphabet=alphabet,
        )

    @classmethod
    def from_source(
        cls,
        source: WindowSource,
        *,
        params: ISAXParams | None = None,
        alphabet: SAXAlphabet | None = None,
    ) -> "ISAXIndex":
        """Build from a prepared window source.

        Without an explicit alphabet, Gaussian breakpoints are used for
        z-normalized regimes and empirical (data-quantile) breakpoints
        for raw values, per the paper's breakpoint-adjustment note.
        """
        index = cls(source, params, alphabet)
        started = time.perf_counter()
        index._build()
        index._build_stats.seconds = time.perf_counter() - started
        index._build_stats.windows = source.count
        index._build_stats.height = index.height
        index._build_stats.nodes = index.node_count
        return index

    def _build(self) -> None:
        params = self._params
        self._paa = paa_matrix(self._source, params.segments)
        if self._alphabet is None:
            if self._source.normalization is Normalization.NONE:
                self._alphabet = SAXAlphabet.empirical(
                    self._paa.ravel(), 1 << params.max_bits
                )
            else:
                self._alphabet = SAXAlphabet.gaussian(1 << params.max_bits)
        elif self._alphabet.max_bits < params.max_bits:
            raise InvalidParameterError(
                "alphabet supports fewer bits than params.max_bits"
            )
        self._sax = self._alphabet.symbols(self._paa)

        shift = params.max_bits - params.base_bits
        base_words = self._sax >> shift
        for position in range(self._source.count):
            self._insert(position, base_words[position])

    def _insert(self, position: int, base_word: np.ndarray) -> None:
        params = self._params
        key = tuple(int(symbol) for symbol in base_word)
        node = self._root_children.get(key)
        if node is None:
            node = _ISAXNode(
                np.asarray(base_word, dtype=np.int64).copy(),
                np.full(params.segments, params.base_bits, dtype=np.int64),
                self._alphabet,
            )
            self._root_children[key] = node

        while not node.is_leaf:
            segment = node.split_segment
            bit = self._bit_of(position, segment, int(node.bits[segment]) + 1)
            node = node.children[bit]

        node.positions.append(position)
        if len(node.positions) > params.leaf_capacity:
            self._split_leaf(node)

    def _bit_of(self, position: int, segment: int, bits: int) -> int:
        """The ``bits``-th symbol bit of ``position``'s segment symbol."""
        symbol = int(self._sax[position, segment])
        return (symbol >> (self._params.max_bits - bits)) & 1

    def _split_leaf(self, node: _ISAXNode) -> None:
        """Promote one more bit of the most balanced splittable segment.

        If no segment separates the entries (all symbols identical at
        max cardinality), the leaf is allowed to overflow — the standard
        iSAX degenerate case.
        """
        params = self._params
        positions = np.asarray(node.positions, dtype=POSITION_DTYPE)
        best_segment = -1
        best_balance = None
        best_mask = None
        for segment in range(params.segments):
            bits = int(node.bits[segment])
            if bits >= params.max_bits:
                continue
            shift = params.max_bits - (bits + 1)
            mask = ((self._sax[positions, segment] >> shift) & 1).astype(bool)
            ones = int(mask.sum())
            if ones == 0 or ones == positions.size:
                continue
            balance = abs(positions.size - 2 * ones)
            if best_balance is None or balance < best_balance:
                best_segment = segment
                best_balance = balance
                best_mask = mask
        if best_segment < 0:
            return  # cannot split: indistinguishable entries stay put

        node.split_segment = best_segment
        children = {}
        for bit in (0, 1):
            word = node.word.copy()
            bits = node.bits.copy()
            word[best_segment] = word[best_segment] * 2 + bit
            bits[best_segment] += 1
            child = _ISAXNode(word, bits, self._alphabet)
            selected = positions[best_mask] if bit else positions[~best_mask]
            child.positions = [int(p) for p in selected]
            children[bit] = child
        node.children = children
        node.positions = None
        self._build_stats.splits += 1
        for child in children.values():
            if len(child.positions) > params.leaf_capacity:
                self._split_leaf(child)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def source(self) -> WindowSource:
        """The indexed window source."""
        return self._source

    @property
    def params(self) -> ISAXParams:
        """Construction parameters."""
        return self._params

    @property
    def alphabet(self) -> SAXAlphabet:
        """The breakpoint table in use."""
        return self._alphabet

    @property
    def build_stats(self) -> BuildStats:
        """Counters recorded while building."""
        return self._build_stats

    @property
    def height(self) -> int:
        """Longest root-to-leaf path (in nodes, excluding the root)."""
        best = 0
        stack = [(node, 1) for node in self._root_children.values()]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            if not node.is_leaf:
                stack.extend((child, depth + 1) for child in node.children.values())
        return best

    @property
    def node_count(self) -> int:
        """Total nodes under the root."""
        count = 0
        stack = list(self._root_children.values())
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children.values())
        return count

    def iter_nodes(self):
        """Yield every node (diagnostics, memory accounting, tests)."""
        stack = list(self._root_children.values())
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children.values())

    def __repr__(self) -> str:
        return (
            f"ISAXIndex(windows={self._source.count}, segments="
            f"{self._params.segments}, nodes={self.node_count})"
        )

    # ------------------------------------------------------------------
    # Query (Section 4.2 filter + shared verification)
    # ------------------------------------------------------------------
    def search(
        self, query, epsilon: float, *, verification: str = "bulk"
    ) -> SearchResult:
        """Traverse, pruning nodes whose per-segment mean range is more
        than ``ε`` from the query's PAA mean in any segment.

        ``verification`` picks the strategy (see
        :data:`~repro.core.verification.VERIFICATION_MODES`). Queries
        shorter than ``l`` dispatch to the pipeline's prefix scan (the
        SAX summaries are length-specific, so no filtering applies).
        """
        if is_prefix_query(query, self._source.length):
            return self.search_varlength(
                query, epsilon, verification=verification
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)
        query_paa = paa_transform(query, self._params.segments)
        stats = QueryStats()

        slack = epsilon + self._paa_slack
        collected: list[np.ndarray] = []
        stack = list(self._root_children.values())
        while stack:
            node = stack.pop()
            stats.nodes_visited += 1
            if np.any(query_paa < node.low - slack) or np.any(
                query_paa > node.high + slack
            ):
                stats.nodes_pruned += 1
                continue
            if node.is_leaf:
                stats.leaves_accessed += 1
                if node.positions:
                    collected.append(
                        np.asarray(node.positions, dtype=POSITION_DTYPE)
                    )
            else:
                stack.extend(node.children.values())

        candidates = (
            np.concatenate(collected)
            if collected
            else np.empty(0, dtype=POSITION_DTYPE)
        )
        return verify(
            self._source, query, candidates, epsilon,
            mode=verification, stats=stats,
        )

    def search_approximate(self, query, epsilon: float) -> SearchResult:
        """Twins from the query's *own* leaf only (approximate search).

        The classic iSAX approximate query: descend by the query's SAX
        word to a single leaf and verify just its contents. Answers are
        always a subset of :meth:`search`'s; a query that equals an
        indexed window is guaranteed to find at least itself (identical
        values quantize to the identical word). Cost is one root lookup
        plus one leaf verification.
        """
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)
        query_paa = paa_transform(query, self._params.segments)
        symbols = self._alphabet.symbols(query_paa)
        stats = QueryStats()

        shift = self._params.max_bits - self._params.base_bits
        key = tuple(int(symbol) for symbol in (symbols >> shift))
        node = self._root_children.get(key)
        if node is None:
            return SearchResult.empty(stats)
        while not node.is_leaf:
            stats.nodes_visited += 1
            segment = node.split_segment
            bits = int(node.bits[segment]) + 1
            bit = (int(symbols[segment]) >> (self._params.max_bits - bits)) & 1
            node = node.children[bit]
        stats.nodes_visited += 1
        stats.leaves_accessed += 1
        positions = np.asarray(node.positions, dtype=POSITION_DTYPE)
        return verify(self._source, query, positions, epsilon, stats=stats)
