"""Symbolic Aggregate approXimation (SAX) alphabets and words.

A SAX word quantizes a PAA vector: each per-segment mean is mapped to a
discrete symbol whose value range is delimited by *breakpoints*
(Section 4.2). The iSAX trick (Shieh & Keogh 2008) requires breakpoints
that *nest* across dyadic cardinalities — the symbol at cardinality
``2^b`` is the top ``b`` bits of the symbol at the maximum cardinality —
so :class:`SAXAlphabet` stores one breakpoint table at the maximum
cardinality and derives every coarser level from it.

Two alphabet flavours match the paper's two data regimes:

* :meth:`SAXAlphabet.gaussian` — the classic N(0, 1) quantile
  breakpoints, valid when values are z-normalized;
* :meth:`SAXAlphabet.empirical` — quantile breakpoints estimated from
  the indexed data, the paper's "non-normalized values can also be
  handled by adjusting the breakpoints accordingly".
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from .._util import as_float_array, check_positive_int
from ..exceptions import InvalidParameterError


def _check_power_of_two(value: int, *, name: str) -> int:
    value = check_positive_int(value, name=name)
    if value & (value - 1):
        raise InvalidParameterError(f"{name} must be a power of two, got {value}")
    return value


class SAXAlphabet:
    """Nested dyadic breakpoints up to a maximum cardinality.

    ``breakpoints(c)`` returns the ``c - 1`` boundaries splitting the
    value axis into ``c`` bins; symbol ``s`` covers
    ``[bp[s-1], bp[s])`` (closed below, open above), with the outermost
    bins unbounded.
    """

    __slots__ = ("_full", "_max_cardinality")

    def __init__(self, full_breakpoints, max_cardinality: int):
        max_cardinality = _check_power_of_two(
            max_cardinality, name="max_cardinality"
        )
        full = np.asarray(full_breakpoints, dtype=float)
        if full.ndim != 1 or full.size != max_cardinality - 1:
            raise InvalidParameterError(
                f"need {max_cardinality - 1} breakpoints for cardinality "
                f"{max_cardinality}, got shape {full.shape}"
            )
        if np.any(np.diff(full) < 0):
            raise InvalidParameterError("breakpoints must be non-decreasing")
        self._full = full
        self._max_cardinality = max_cardinality

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def gaussian(cls, max_cardinality: int = 256) -> "SAXAlphabet":
        """Standard-normal quantile breakpoints (z-normalized data)."""
        max_cardinality = _check_power_of_two(
            max_cardinality, name="max_cardinality"
        )
        quantiles = np.arange(1, max_cardinality) / max_cardinality
        return cls(scipy_stats.norm.ppf(quantiles), max_cardinality)

    @classmethod
    def empirical(cls, samples, max_cardinality: int = 256) -> "SAXAlphabet":
        """Quantile breakpoints estimated from observed values (the raw
        data regime of Figure 7). Dyadic quantiles nest by construction,
        preserving the iSAX bit-prefix property."""
        max_cardinality = _check_power_of_two(
            max_cardinality, name="max_cardinality"
        )
        samples = as_float_array(samples, name="samples")
        quantiles = np.arange(1, max_cardinality) / max_cardinality
        return cls(np.quantile(samples, quantiles), max_cardinality)

    # ------------------------------------------------------------------
    @property
    def max_cardinality(self) -> int:
        """The finest cardinality this alphabet supports."""
        return self._max_cardinality

    @property
    def max_bits(self) -> int:
        """``log2(max_cardinality)``."""
        return int(self._max_cardinality).bit_length() - 1

    def breakpoints(self, cardinality: int) -> np.ndarray:
        """The ``cardinality - 1`` boundaries at a coarser dyadic level."""
        cardinality = _check_power_of_two(cardinality, name="cardinality")
        if cardinality > self._max_cardinality:
            raise InvalidParameterError(
                f"cardinality {cardinality} exceeds maximum "
                f"{self._max_cardinality}"
            )
        step = self._max_cardinality // cardinality
        return self._full[step - 1 :: step]

    def __repr__(self) -> str:
        return f"SAXAlphabet(max_cardinality={self._max_cardinality})"

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------
    def symbols(self, values, cardinality: int | None = None) -> np.ndarray:
        """Map values to symbols in ``[0, cardinality)``.

        A value equal to a breakpoint belongs to the upper bin; the
        returned dtype is ``int64`` to survive bit arithmetic.
        """
        cardinality = cardinality or self._max_cardinality
        breakpoints = self.breakpoints(cardinality)
        values = np.asarray(values, dtype=float)
        return np.searchsorted(breakpoints, values, side="right").astype(np.int64)

    def coarsen(self, symbols, from_bits: int, to_bits: int) -> np.ndarray:
        """Project symbols from ``2^from_bits`` down to ``2^to_bits``
        cardinality (the iSAX bit-prefix projection)."""
        if to_bits > from_bits:
            raise InvalidParameterError(
                f"cannot coarsen from {from_bits} to more bits {to_bits}"
            )
        return np.asarray(symbols, dtype=np.int64) >> (from_bits - to_bits)

    def symbol_range(self, symbol: int, cardinality: int) -> tuple[float, float]:
        """The value interval covered by ``symbol`` at ``cardinality``;
        outermost bins extend to ±inf."""
        breakpoints = self.breakpoints(cardinality)
        symbol = int(symbol)
        if not 0 <= symbol < cardinality:
            raise InvalidParameterError(
                f"symbol {symbol} outside [0, {cardinality})"
            )
        low = -np.inf if symbol == 0 else float(breakpoints[symbol - 1])
        high = np.inf if symbol == cardinality - 1 else float(breakpoints[symbol])
        return low, high

    def word_ranges(self, word, bits) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment ``(low, high)`` bounds of a (possibly
        mixed-cardinality) iSAX word.

        ``word[i]`` is the symbol of segment ``i`` at cardinality
        ``2^bits[i]``. Vectorized over segments.
        """
        word = np.asarray(word, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int64)
        if word.shape != bits.shape:
            raise InvalidParameterError(
                f"word and bits must align, got {word.shape} vs {bits.shape}"
            )
        low = np.empty(word.size, dtype=float)
        high = np.empty(word.size, dtype=float)
        for i in range(word.size):
            cardinality = 1 << int(bits[i])
            if cardinality == 1:
                low[i], high[i] = -np.inf, np.inf
            else:
                low[i], high[i] = self.symbol_range(int(word[i]), cardinality)
        return low, high


def sax_word(
    sequence, segments: int, alphabet: SAXAlphabet, cardinality: int | None = None
) -> np.ndarray:
    """SAX word of one sequence: PAA then quantization."""
    from .paa import paa_transform

    return alphabet.symbols(paa_transform(sequence, segments), cardinality)
