"""Common interface and factory for every twin-search method.

Each method (sweepline, KV-Index, iSAX, TS-Index) exposes the same
surface — build over a :class:`~repro.core.windows.WindowSource`, answer
``search(query, epsilon)`` with a :class:`~repro.core.stats.SearchResult`
— so the benchmark harness, the equivalence tests and the CLI can treat
them uniformly by name.
"""

from __future__ import annotations

import abc

from ..core.normalization import Normalization
from ..core.stats import BuildStats, SearchResult
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError

#: Canonical method names, in the order the paper's figures list them.
METHOD_NAMES = ("sweepline", "kvindex", "isax", "tsindex")


class SubsequenceIndex(abc.ABC):
    """Abstract twin-search method over the windows of one series."""

    #: Registry name; subclasses override.
    method_name: str = ""

    @classmethod
    @abc.abstractmethod
    def from_source(cls, source: WindowSource, **kwargs) -> "SubsequenceIndex":
        """Build (or wrap) the method over a prepared window source."""

    @abc.abstractmethod
    def search(self, query, epsilon: float) -> SearchResult:
        """All twins of ``query`` within Chebyshev ``epsilon``."""

    @property
    @abc.abstractmethod
    def source(self) -> WindowSource:
        """The window source this method answers queries over."""

    @property
    @abc.abstractmethod
    def build_stats(self) -> BuildStats:
        """Counters recorded while building."""

    def count(self, query, epsilon: float) -> int:
        """Number of twins (default: materialize and count)."""
        return len(self.search(query, epsilon))


def available_methods() -> tuple[str, ...]:
    """Names accepted by :func:`create_method`."""
    return METHOD_NAMES


def create_method(
    name: str,
    series,
    length: int,
    *,
    normalization=Normalization.GLOBAL,
    **kwargs,
):
    """Build the named method over all ``length``-windows of ``series``.

    ``kwargs`` are forwarded to the method's ``from_source``. This is the
    single entry point the harness and CLI use, so experiments stay
    declarative ("run fig4 with methods=[...]").
    """
    source = WindowSource(series, length, normalization)
    return create_method_from_source(name, source, **kwargs)


def create_method_from_source(name: str, source: WindowSource, **kwargs):
    """Like :func:`create_method` but reusing a prepared source."""
    # Local imports: the concrete classes import this module's ABC.
    from ..core.tsindex import TSIndex, TSIndexParams
    from .isax import ISAXIndex
    from .kvindex import KVIndex
    from .sweepline import SweeplineSearch

    normalized = str(name).lower().replace("-", "").replace("_", "")
    if normalized == "sweepline":
        return SweeplineSearch.from_source(source, **kwargs)
    if normalized in ("kvindex", "kvmatch", "kv"):
        return KVIndex.from_source(source, **kwargs)
    if normalized == "isax":
        return ISAXIndex.from_source(source, **kwargs)
    if normalized in ("tsindex", "ts"):
        params = kwargs.pop("params", None)
        if kwargs:
            params = TSIndexParams(**kwargs)
        return TSIndex.from_source(source, params=params)
    if normalized in ("frozen", "frozentsindex"):
        # Read-optimized flat form of TS-Index (repro.core.frozen):
        # same answers, vectorized frontier traversal. Not in
        # METHOD_NAMES for the same reason as "sharded".
        params = kwargs.pop("params", None)
        if kwargs:
            params = TSIndexParams(**kwargs)
        return TSIndex.from_source(source, params=params).freeze()
    if normalized in ("live", "livetwinindex"):
        # The LSM-style ingestion plane (repro.live): answers the same
        # ``search`` surface over an appendable series. Not listed in
        # METHOD_NAMES for the same reason as "sharded"/"frozen".
        from ..live import LiveTwinIndex

        return LiveTwinIndex.from_source(source, **kwargs)
    if normalized in ("sharded", "shardedtsindex", "engine"):
        # The serving-layer index (repro.engine); answers the same
        # ``search`` surface, so the harness can drive it by name. Not
        # listed in METHOD_NAMES: the paper's figures compare only the
        # four paper methods.
        from ..engine.sharding import ShardedTSIndex

        return ShardedTSIndex.from_source(source, **kwargs)
    raise InvalidParameterError(
        f"unknown method {name!r}; expected one of {METHOD_NAMES}"
    )
