"""Common interface and factory for every twin-search method.

Each method (sweepline, KV-Index, iSAX, TS-Index) exposes the same
surface — build over a :class:`~repro.core.windows.WindowSource`, answer
``search(query, epsilon)`` with a :class:`~repro.core.stats.SearchResult`
— so the benchmark harness, the equivalence tests and the CLI can treat
them uniformly by name.

Beyond the paper surface, :class:`SubsequenceIndex` now carries
**default implementations of every other query mode** — ``knn``,
``exists``, ``search_batch`` and ``count`` — routed
through the plane-agnostic pipeline in :mod:`repro.query`: planes
declare what they support natively (``capabilities``) and the planner
synthesizes the rest, so even a search-only method is fully servable by
:class:`~repro.engine.executor.QueryEngine`.

Planes self-register with the :func:`repro.query.register_plane`
decorator; :func:`create_method` resolves names through that registry
instead of a hard-coded ``if/elif`` chain.
"""

from __future__ import annotations

import abc

from ..core.normalization import Normalization
from ..core.stats import BuildStats, SearchResult
from ..core.windows import WindowSource
from ..query.capabilities import BASE_CAPABILITIES

#: Canonical paper-method names, in the order the paper's figures list
#: them. Extended planes (frozen, sharded, live) are listed by
#: :func:`extended_methods`.
METHOD_NAMES = ("sweepline", "kvindex", "isax", "tsindex")


class SubsequenceIndex(abc.ABC):
    """Abstract twin-search method over the windows of one series.

    Subclasses must bring ``search``; every other query mode has a
    pipeline-backed default here. A subclass with a faster native
    kernel overrides the method *and* adds the matching capability
    name to :attr:`capabilities` so the planner (and the engine) call
    it directly.
    """

    #: Registry name; subclasses override.
    method_name: str = ""

    #: Natively implemented kernels (see :mod:`repro.query.capabilities`).
    #: The default — search only — means every other mode is synthesized
    #: by the planner.
    capabilities: frozenset = BASE_CAPABILITIES

    @classmethod
    @abc.abstractmethod
    def from_source(cls, source: WindowSource, **kwargs) -> "SubsequenceIndex":
        """Build (or wrap) the method over a prepared window source."""

    @abc.abstractmethod
    def search(self, query, epsilon: float) -> SearchResult:
        """All twins of ``query`` within Chebyshev ``epsilon``."""

    @property
    @abc.abstractmethod
    def source(self) -> WindowSource:
        """The window source this method answers queries over."""

    @property
    @abc.abstractmethod
    def build_stats(self) -> BuildStats:
        """Counters recorded while building."""

    # ------------------------------------------------------------------
    # Pipeline-backed defaults (planes with native kernels override and
    # declare the capability; see repro.query.planner)
    # ------------------------------------------------------------------
    def knn(self, query, k: int, *, exclude=None) -> SearchResult:
        """The ``k`` nearest windows by Chebyshev distance, ranked by
        the library-wide ``(distance, position)`` tie-break (default:
        exact blockwise scan via the planner)."""
        from ..query import QuerySpec, execute

        return execute(
            self, QuerySpec(query=query, mode="knn", k=k, exclude=exclude)
        )

    def exists(self, query, epsilon: float) -> bool:
        """Whether any twin exists (default: search-backed)."""
        from ..query import QuerySpec, execute

        return execute(
            self, QuerySpec(query=query, mode="exists", epsilon=epsilon)
        )

    def search_batch(self, queries, epsilon: float, **search_options):
        """Run a whole workload; per-query results plus aggregates
        (default: a planner loop sharing one merge/stats kernel)."""
        from ..query import QuerySpec, execute

        return execute(
            self,
            QuerySpec(
                query=list(queries),
                mode="batch",
                epsilon=epsilon,
                options=dict(search_options),
            ),
        )

    def count(self, query, epsilon: float) -> int:
        """Number of twins (default: via the planner — the plane's
        native non-materializing count where declared, its own pruned
        search otherwise)."""
        from ..query import QuerySpec, execute

        return execute(
            self, QuerySpec(query=query, mode="count", epsilon=epsilon)
        )

    def search_varlength(
        self, query, epsilon: float, **search_options
    ) -> SearchResult:
        """All twins of a query of length ``m <= l``, tail positions
        included (default: the planner's synthesized prefix scan;
        planes declaring ``CAP_VARLENGTH`` override with native
        prefix-pruned kernels). ``m == l`` behaves exactly like
        :meth:`search`."""
        from ..query import QuerySpec, execute

        return execute(
            self,
            QuerySpec(
                query=query,
                mode="search",
                epsilon=epsilon,
                options=dict(search_options),
            ),
        )


def available_methods(*, extended: bool = False) -> tuple[str, ...]:
    """Names accepted by :func:`create_method`.

    By default the paper's four methods (the tuple the figures sweep);
    with ``extended=True`` the extended serving planes (frozen, sharded,
    live) are appended. Both listings are driven by the registration
    decorator, so they always name exactly what works.
    """
    from ..query.registration import plane_names

    paper = plane_names(paper=True)
    if not extended:
        return paper
    return paper + plane_names(paper=False)


def extended_methods() -> tuple[str, ...]:
    """The extended (beyond-paper) plane names: read-optimized frozen
    snapshots, the sharded serving engine, the live ingestion plane."""
    from ..query.registration import plane_names

    return plane_names(paper=False)


def create_method(
    name: str,
    series,
    length: int,
    *,
    normalization=Normalization.GLOBAL,
    **kwargs,
):
    """Build the named method over all ``length``-windows of ``series``.

    ``kwargs`` are forwarded to the method's ``from_source``. This is the
    single entry point the harness and CLI use, so experiments stay
    declarative ("run fig4 with methods=[...]").
    """
    source = WindowSource(series, length, normalization)
    return create_method_from_source(name, source, **kwargs)


def create_method_from_source(name: str, source: WindowSource, **kwargs):
    """Like :func:`create_method` but reusing a prepared source.

    Resolution goes through the plane registry
    (:mod:`repro.query.registration`): planes self-register with the
    ``@register_plane`` decorator, and unknown names raise an error
    listing every registered name.
    """
    from ..query.registration import resolve_plane

    return resolve_plane(name).build(source, **kwargs)
