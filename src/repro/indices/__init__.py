"""Search methods compared in the paper's evaluation (Sections 3.2, 4).

* :class:`~repro.indices.sweepline.SweeplineSearch` — the index-free
  baseline (scan all windows, verify each);
* :class:`~repro.indices.kvindex.KVIndex` — the KV-Match adaptation
  (mean-value inverted index, Section 4.1);
* :class:`~repro.indices.isax.ISAXIndex` — the iSAX adaptation
  (per-segment SAX range pruning, Section 4.2);

plus the shared :class:`~repro.indices.base.SubsequenceIndex` interface
and a name-based factory used by the benchmark harness. TS-Index itself
lives in :mod:`repro.core.tsindex` (it is the paper's contribution) but
registers here as ``"tsindex"`` for uniform access.
"""

from .base import (
    METHOD_NAMES,
    SubsequenceIndex,
    available_methods,
    create_method,
    extended_methods,
)
from .isax import ISAXIndex, ISAXParams
from .kvindex import KVIndex, KVIndexParams
from .paa import paa_matrix, paa_transform, segment_bounds
from .sax import SAXAlphabet, sax_word
from .sweepline import SweeplineSearch

# TS-Index lives in repro.core (it is the paper's contribution) but
# satisfies the same interface; register it as a virtual subclass so
# ``isinstance(index, SubsequenceIndex)`` holds for all four methods.
from ..core.frozen import FrozenTSIndex as _FrozenTSIndex
from ..core.tsindex import TSIndex as _TSIndex

SubsequenceIndex.register(_TSIndex)
SubsequenceIndex.register(_FrozenTSIndex)

__all__ = [
    "ISAXIndex",
    "ISAXParams",
    "KVIndex",
    "KVIndexParams",
    "METHOD_NAMES",
    "SAXAlphabet",
    "SubsequenceIndex",
    "SweeplineSearch",
    "available_methods",
    "create_method",
    "extended_methods",
    "paa_matrix",
    "paa_transform",
    "sax_word",
    "segment_bounds",
]
