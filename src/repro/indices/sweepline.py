"""The sweepline baseline (Sections 1 and 3.2).

Scans the series with a sliding window of the query's length and
verifies every window against the Chebyshev threshold — no filtering at
all, so its cost is flat in ``ε`` (exactly the behaviour shown for
"Sweepline" in Figures 4–7). Verification is the shared vectorized
machinery; a pure-Python reordering-early-abandoning scan is also
provided as an executable specification (tests compare the two).
"""

from __future__ import annotations

import time

import numpy as np

from .._util import POSITION_DTYPE, check_non_negative
from ..core.distance import chebyshev_distance_reordered, reorder_by_magnitude
from ..core.normalization import Normalization
from ..core.stats import BuildStats, QueryStats, SearchResult
from ..core.verification import verify, verify_intervals
from ..core.windows import WindowSource
from ..query.registration import register_plane
from ..query.spec import prepare_values
from ..query.varlength import is_prefix_query
from .base import SubsequenceIndex


@register_plane(
    "sweepline",
    paper=True,
    summary="index-free exhaustive scan (Section 3.2)",
)
class SweeplineSearch(SubsequenceIndex):
    """Index-free exhaustive twin search over one series.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.indices import SweeplineSearch
    >>> series = np.sin(np.linspace(0.0, 20.0, 500))
    >>> scan = SweeplineSearch.build(series, length=40, normalization="none")
    >>> result = scan.search(series[10:50], epsilon=0.05)
    >>> int(result.positions[0]) <= 10 <= int(result.positions[-1])
    True
    """

    method_name = "sweepline"

    def __init__(self, source: WindowSource):
        self._source = source
        self._build_stats = BuildStats(
            seconds=0.0, windows=source.count, splits=0, height=0, nodes=0
        )

    @classmethod
    def build(
        cls, series, length: int, *, normalization=Normalization.GLOBAL
    ) -> "SweeplineSearch":
        """Prepare a sweepline scan over all ``length``-windows."""
        return cls.from_source(WindowSource(series, length, normalization))

    @classmethod
    def from_source(cls, source: WindowSource, **kwargs) -> "SweeplineSearch":
        """Wrap a prepared window source (no build work is needed)."""
        if kwargs:
            raise TypeError(f"unexpected options: {sorted(kwargs)}")
        started = time.perf_counter()
        instance = cls(source)
        instance._build_stats.seconds = time.perf_counter() - started
        return instance

    @property
    def source(self) -> WindowSource:
        """The window source being scanned."""
        return self._source

    @property
    def build_stats(self) -> BuildStats:
        """Essentially zero — the sweepline has nothing to build."""
        return self._build_stats

    def __repr__(self) -> str:
        return f"SweeplineSearch(windows={self._source.count})"

    # ------------------------------------------------------------------
    def search(
        self, query, epsilon: float, *, verification: str = "bulk"
    ) -> SearchResult:
        """Verify every window position against ``query`` at ``ε``.

        ``verification`` picks the strategy (see
        :data:`~repro.core.verification.VERIFICATION_MODES`); ``bulk``
        uses zero-copy interval verification over the whole range.
        Queries shorter than ``l`` dispatch to the pipeline's prefix
        scan (:meth:`~repro.indices.base.SubsequenceIndex.search_varlength`).
        """
        if is_prefix_query(query, self._source.length):
            return self.search_varlength(
                query, epsilon, verification=verification
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)
        if verification == "bulk":
            return verify_intervals(
                self._source, query, [(0, self._source.count)], epsilon
            )
        positions = np.arange(self._source.count, dtype=POSITION_DTYPE)
        return verify(
            self._source, query, positions, epsilon, mode=verification
        )

    def search_pure_python(self, query, epsilon: float) -> SearchResult:
        """Reference implementation: a per-window Python loop using
        reordering early abandoning (Section 3.2), kept as an executable
        specification of the vectorized paths."""
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)
        order = reorder_by_magnitude(query)
        stats = QueryStats()
        positions: list[int] = []
        distances: list[float] = []
        for position in range(self._source.count):
            stats.candidates += 1
            stats.verified += 1
            window = self._source.window(position)
            distance = chebyshev_distance_reordered(
                query, window, epsilon, order=order
            )
            if distance <= epsilon:
                positions.append(position)
                distances.append(distance)
        stats.matches = len(positions)
        return SearchResult(
            positions=np.asarray(positions, dtype=POSITION_DTYPE),
            distances=np.asarray(distances, dtype=float),
            stats=stats,
        )
