"""KV-Index adapted to twin subsequence search (Section 4.1).

Following KV-Match (Wu et al., ICDE'19), every window is summarised by
its mean value. The index is an inverted structure: keys are disjoint
equal-width ranges of the mean domain, and each key maps to the set of
window start positions whose means fall in that range, compressed into
sorted half-open intervals (exactly the "intervals of positions" the
paper describes).

The twin filter is the paper's observation that twins' means differ by
at most ``ε``: a query with mean ``μ_q`` only needs the keys overlapping
``[μ_q - ε, μ_q + ε]``. Candidates from those bins are then exactly
verified. Per Section 4.1, the filter is void under per-subsequence
z-normalization (all means are 0), so construction rejects that regime.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .._util import (
    POSITION_DTYPE,
    check_non_negative,
    check_positive_int,
    intervals_to_positions,
    positions_to_intervals,
)
from ..core.normalization import Normalization
from ..core.stats import BuildStats, QueryStats, SearchResult
from ..core.verification import verify, verify_intervals
from ..core.windows import WindowSource
from ..exceptions import UnsupportedNormalizationError
from ..query.registration import register_plane
from ..query.spec import prepare_values
from ..query.varlength import is_prefix_query
from .base import SubsequenceIndex


@dataclasses.dataclass(frozen=True)
class KVIndexParams:
    """Construction parameters for :class:`KVIndex`.

    ``num_bins`` controls the key granularity: more bins mean tighter
    mean ranges per key (better filtering) at slightly more memory.
    """

    num_bins: int = 256

    def __post_init__(self):
        check_positive_int(self.num_bins, name="num_bins")


@register_plane(
    "kvindex",
    aliases=("kvmatch", "kv"),
    paper=True,
    summary="mean-value inverted index (Section 4.1)",
)
class KVIndex(SubsequenceIndex):
    """Inverted index over window means for twin search.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.indices import KVIndex
    >>> series = np.cumsum(np.random.default_rng(3).normal(size=3000))
    >>> index = KVIndex.build(series, length=64, normalization="global")
    >>> int(sorted(index.search(index.source.window_block(5, 6)[0], 0.3).positions)[0]) >= 0
    True
    """

    method_name = "kvindex"

    def __init__(self, source: WindowSource, params: KVIndexParams | None = None):
        if source.normalization is Normalization.PER_WINDOW:
            raise UnsupportedNormalizationError(
                "KV-Index cannot index per-window z-normalized data: every "
                "window mean is zero, so the mean filter prunes nothing "
                "(paper, Section 4.1)"
            )
        self._source = source
        self._params = params or KVIndexParams()
        self._edges: np.ndarray | None = None
        self._bins: list[list[tuple[int, int]]] = []
        self._build_stats = BuildStats()
        # Rolling means are computed with cumulative sums whose rounding
        # error grows with the prefix magnitude; the filter range is
        # padded by this slack so twins whose *computed* means differ by
        # a few ulps are never lost (verification discards the handful
        # of extra candidates). See tests/test_properties.py.
        csum_peak = float(np.max(np.abs(np.cumsum(source.values))))
        self._mean_slack = (
            8.0 * np.finfo(float).eps * max(1e-300, csum_peak) / source.length
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        series,
        length: int,
        *,
        normalization=Normalization.GLOBAL,
        params: KVIndexParams | None = None,
    ) -> "KVIndex":
        """Build over all ``length``-windows of ``series``."""
        return cls.from_source(
            WindowSource(series, length, normalization), params=params
        )

    @classmethod
    def from_source(
        cls, source: WindowSource, *, params: KVIndexParams | None = None
    ) -> "KVIndex":
        """Build from a prepared window source."""
        index = cls(source, params)
        started = time.perf_counter()
        index._build()
        index._build_stats = BuildStats(
            seconds=time.perf_counter() - started,
            windows=source.count,
            splits=0,
            height=1,
            nodes=len(index._bins),
        )
        return index

    def _build(self) -> None:
        means = self._source.means()
        low = float(means.min())
        high = float(means.max())
        num_bins = self._params.num_bins
        if high - low <= 0.0:
            # Degenerate: all means equal; one bin covers everything.
            self._edges = np.asarray([low, low], dtype=float)
            self._bins = [
                positions_to_intervals(np.arange(means.size, dtype=POSITION_DTYPE))
            ]
            return
        edges = np.linspace(low, high, num_bins + 1)
        assignment = np.clip(
            np.searchsorted(edges, means, side="right") - 1, 0, num_bins - 1
        )
        self._edges = edges
        self._bins = [[] for _ in range(num_bins)]
        order = np.argsort(assignment, kind="stable")
        sorted_bins = assignment[order]
        boundaries = np.flatnonzero(np.diff(sorted_bins)) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            if group.size == 0:
                continue
            bin_id = int(assignment[group[0]])
            self._bins[bin_id] = positions_to_intervals(np.sort(group))

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def source(self) -> WindowSource:
        """The indexed window source."""
        return self._source

    @property
    def params(self) -> KVIndexParams:
        """Construction parameters."""
        return self._params

    @property
    def build_stats(self) -> BuildStats:
        """Counters recorded while building."""
        return self._build_stats

    @property
    def num_bins(self) -> int:
        """Number of mean-range keys."""
        return len(self._bins)

    @property
    def edges(self) -> np.ndarray:
        """Bin edges over the mean domain (length ``num_bins + 1``)."""
        return self._edges

    def bin_intervals(self, bin_id: int) -> list[tuple[int, int]]:
        """The position intervals stored under key ``bin_id``."""
        return list(self._bins[bin_id])

    def interval_count(self) -> int:
        """Total number of stored position intervals (memory driver)."""
        return sum(len(entry) for entry in self._bins)

    def __repr__(self) -> str:
        return (
            f"KVIndex(windows={self._source.count}, bins={self.num_bins}, "
            f"intervals={self.interval_count()})"
        )

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def search(
        self, query, epsilon: float, *, verification: str = "bulk"
    ) -> SearchResult:
        """Mean-range filter, then exact verification (Section 4.1).

        ``verification`` picks the strategy (see
        :data:`~repro.core.verification.VERIFICATION_MODES`). Queries
        shorter than ``l`` dispatch to the pipeline's prefix scan (the
        mean filter is length-specific, so no filtering applies).
        """
        if is_prefix_query(query, self._source.length):
            return self.search_varlength(
                query, epsilon, verification=verification
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)
        query_mean = float(query.mean())
        stats = QueryStats()

        first, last = self._overlapping_bins(
            query_mean, epsilon + self._mean_slack
        )
        stats.nodes_visited = max(0, last - first)
        stats.nodes_pruned = self.num_bins - stats.nodes_visited
        intervals = self._merged_intervals(first, last)
        stats.leaves_accessed = len(intervals)
        if verification == "bulk":
            return verify_intervals(
                self._source, query, intervals, epsilon, stats=stats
            )
        positions = intervals_to_positions(intervals)
        return verify(
            self._source, query, positions, epsilon,
            mode=verification, stats=stats,
        )

    def candidate_intervals(
        self, query, epsilon: float
    ) -> list[tuple[int, int]]:
        """The filter step alone — merged candidate position intervals.

        Exposed for the filter-quality diagnostics in the benchmarks.
        """
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)
        first, last = self._overlapping_bins(
            float(query.mean()), epsilon + self._mean_slack
        )
        return self._merged_intervals(first, last)

    def _overlapping_bins(self, query_mean: float, epsilon: float):
        """Bin id range (half-open) overlapping ``[μ_q - ε, μ_q + ε]``.

        Bin ``i`` covers ``[e_i, e_{i+1})`` except the last bin, which
        additionally owns the top edge — the clamping below keeps a
        query mean that falls exactly on ``e_n`` inside the last bin.
        """
        edges = self._edges
        low_value = query_mean - epsilon
        high_value = query_mean + epsilon
        if high_value < float(edges[0]) or low_value > float(edges[-1]):
            return 0, 0
        if self.num_bins == 1:
            return 0, 1
        first = int(np.searchsorted(edges, low_value, side="right") - 1)
        last = int(np.searchsorted(edges, high_value, side="right"))
        first = min(max(first, 0), self.num_bins - 1)
        last = min(max(last, first + 1), self.num_bins)
        return first, last

    def _merged_intervals(self, first: int, last: int):
        """Union of the intervals of bins ``[first, last)``, merged so the
        verifier touches each candidate window exactly once."""
        collected: list[tuple[int, int]] = []
        for bin_id in range(first, last):
            collected.extend(self._bins[bin_id])
        if not collected:
            return []
        collected.sort()
        merged = [collected[0]]
        for start, stop in collected[1:]:
            if start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
            else:
                merged.append((start, stop))
        return merged
