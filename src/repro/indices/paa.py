"""Piecewise Aggregate Approximation (PAA), Keogh et al. 2001.

PAA splits a length-``l`` sequence into ``m`` segments and keeps the
mean of each — the dimensionality reduction underlying SAX (Section 2).
Two forms are provided: a scalar transform for individual sequences and
a vectorized transform producing the PAA matrix of *all* windows of a
series at once via cumulative sums (O(n·m) instead of O(n·l)).

When ``m`` does not divide ``l``, segment boundaries follow
``round(j * l / m)`` so segment sizes differ by at most one — the same
convention in both forms, so index and query agree exactly.
"""

from __future__ import annotations

import numpy as np

from .._util import FLOAT_DTYPE, as_float_array, check_positive_int
from ..core.normalization import Normalization
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError


def segment_bounds(length: int, segments: int) -> np.ndarray:
    """Integer segment boundaries ``b_0 = 0 < b_1 < ... < b_m = length``.

    Every segment ``[b_j, b_{j+1})`` is non-empty; requires
    ``segments <= length``.
    """
    length = check_positive_int(length, name="length")
    segments = check_positive_int(segments, name="segments")
    if segments > length:
        raise InvalidParameterError(
            f"segments={segments} exceeds sequence length {length}"
        )
    bounds = np.round(np.linspace(0.0, length, segments + 1)).astype(np.int64)
    bounds[0] = 0
    bounds[-1] = length
    return bounds


def paa_transform(sequence, segments: int) -> np.ndarray:
    """PAA of a single sequence: ``segments`` per-segment means."""
    sequence = as_float_array(sequence, name="sequence")
    bounds = segment_bounds(sequence.size, segments)
    csum = np.concatenate(([0.0], np.cumsum(sequence, dtype=FLOAT_DTYPE)))
    sums = csum[bounds[1:]] - csum[bounds[:-1]]
    sizes = (bounds[1:] - bounds[:-1]).astype(FLOAT_DTYPE)
    return sums / sizes


def paa_matrix(source: WindowSource, segments: int) -> np.ndarray:
    """PAA of every window of ``source`` as a ``(count, segments)`` matrix.

    Computed from one cumulative sum over the underlying buffer; under
    the ``PER_WINDOW`` regime the raw per-segment means are rescaled with
    the rolling window statistics, which is algebraically identical to
    PAA of the normalized window.
    """
    bounds = segment_bounds(source.length, segments)
    values = source.values
    csum = np.concatenate(([0.0], np.cumsum(values, dtype=FLOAT_DTYPE)))
    count = source.count
    sizes = (bounds[1:] - bounds[:-1]).astype(FLOAT_DTYPE)

    matrix = np.empty((count, segments), dtype=FLOAT_DTYPE)
    starts = np.arange(count, dtype=np.int64)
    for j in range(segments):
        lo = starts + int(bounds[j])
        hi = starts + int(bounds[j + 1])
        matrix[:, j] = (csum[hi] - csum[lo]) / sizes[j]

    if source.normalization is Normalization.PER_WINDOW:
        from ..core.normalization import rolling_mean, rolling_std

        means = rolling_mean(values, source.length)
        stds = rolling_std(values, source.length)
        matrix -= means[:, None]
        matrix /= stds[:, None]
    return matrix
