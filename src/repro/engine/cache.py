"""Thread-safe LRU result cache for repeated twin queries.

Production query traffic repeats itself (the same pattern is checked
against the same archive by many callers); an LRU over
``(query digest, epsilon, options)`` turns those repeats into O(1)
lookups. Keys hash the query's *bytes*, so two float-identical queries
hit the same entry regardless of the objects holding them; hits return
the cached result object itself (results are treated as immutable —
:class:`~repro.core.stats.SearchResult` arrays are never mutated by the
library).

The cache is safe for concurrent callers: a single lock guards the
underlying ordered dict, and hit/miss/eviction counters are maintained
under the same lock so :meth:`QueryCache.stats` is always consistent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from .._util import FLOAT_DTYPE, check_positive_int

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISS = object()


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        """Plain-dict form (with derived rates) for report tables."""
        row = dataclasses.asdict(self)
        row["hit_rate"] = round(self.hit_rate, 4)
        return row


def query_key(query: Any, epsilon: float, **options: Any) -> tuple:
    """The canonical cache key for a twin query.

    The query is digested from its float64 byte representation
    (BLAKE2b), so equality is exact value equality; ``epsilon`` is keyed
    by its float repr and ``options`` (verification mode, index name,
    ...) as a sorted tuple of pairs.
    """
    array = np.ascontiguousarray(query, dtype=FLOAT_DTYPE)
    digest = hashlib.blake2b(array.tobytes(), digest_size=16)
    digest.update(str(array.shape).encode())
    return (
        digest.hexdigest(),
        repr(float(epsilon)),
        tuple(sorted((str(k), str(v)) for k, v in options.items())),
    )


class QueryCache:
    """A bounded, thread-safe LRU mapping query keys to results.

    Examples
    --------
    >>> cache = QueryCache(capacity=2)
    >>> key = query_key([1.0, 2.0], 0.5)
    >>> cache.get(key) is None
    True
    >>> cache.put(key, "result")
    >>> cache.get(key)
    'result'
    >>> cache.stats().hits, cache.stats().misses
    (1, 1)
    """

    def __init__(self, capacity: int = 256):
        self._capacity = check_positive_int(capacity, name="capacity")
        self._entries: OrderedDict[tuple, object] = OrderedDict()  # lint: guarded-by(_lock)
        self._lock = threading.Lock()
        self._hits = 0  # lint: guarded-by(_lock)
        self._misses = 0  # lint: guarded-by(_lock)
        self._evictions = 0  # lint: guarded-by(_lock)

    @property
    def capacity(self) -> int:
        """Maximum number of cached results."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Any, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it most recent), or
        ``default``. Counts a hit or a miss."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        """Insert (or refresh) ``key``; evicts the least recently used
        entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def get_or_compute(self, key: Any, compute: Any) -> Any:
        """The cached value for ``key``, computing and caching on miss.

        ``compute`` runs *outside* the lock (twin searches are slow), so
        two concurrent misses on the same key may both compute; the last
        writer wins, which is harmless because results for equal keys
        are equal.
        """
        value = self.get(key, _MISS)
        if value is not _MISS:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"QueryCache(size={stats.size}/{stats.capacity}, "
            f"hits={stats.hits}, misses={stats.misses})"
        )
