"""The query-serving front door: registry + cache + concurrent execution.

:class:`QueryEngine` is what a server embeds. It composes

* an :class:`~repro.engine.registry.IndexRegistry` owning the built
  query planes,
* one :class:`~repro.engine.cache.QueryCache` turning repeated queries
  into O(1) hits, and
* a shared executor that fans shard work (single queries) or query
  work (batches) out across cores — a
  :class:`~concurrent.futures.ThreadPoolExecutor` by default, or with
  ``executor="process"`` a
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers open
  each plane's raw (mmap) archive by path, sidestepping the GIL for
  true multi-core scaling with byte-identical results,

behind a small surface — ``build`` / ``query`` / ``knn`` / ``exists`` /
``count`` / ``batch`` / ``stats`` — that is safe to call from many
threads at once. Per-query structural counters stay exact and
deterministic; the engine aggregates them across calls into
:class:`EngineStats`.

Every call routes through the unified query pipeline
(:mod:`repro.query`): a :class:`~repro.query.QuerySpec` describes the
query, the planner negotiates the target plane's capabilities, and the
plane's native kernels (or centrally synthesized fallbacks) execute it.
That makes **every** registered plane — the paper's sweepline /
KV-Index / iSAX baselines included — fully servable, with results
byte-identical to the plane's direct call.

Growing series serve through the same front door: register a
:class:`~repro.live.LiveTwinIndex` with :meth:`QueryEngine.add_live`
and feed it with :meth:`QueryEngine.append`. Cached results are keyed
on the plane's mutation generation, so appends invalidate exactly the
entries they outdate; live planes appear in :class:`EngineStats`
``indexes`` rows with ``kind: "live"``.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import shutil
import tempfile
import threading
import time
from typing import Any

from .._util import available_cpu_count
from ..core.batch import BatchResult
from ..core.stats import QueryStats, SearchResult
from ..exceptions import InvalidParameterError
from ..indices.base import SubsequenceIndex
from ..obs.logsetup import get_logger
from ..obs.metrics import resolve_registry
from ..obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    Tracer,
    activate_trace,
    deactivate_trace,
)
from ..query import QuerySpec, batch_result, plan
from ..query.spec import MODES
from .cache import CacheStats, QueryCache, query_key
from .registry import IndexRegistry
from .sharding import ShardedTSIndex

_log = get_logger("repro.engine")

#: Fan-out executor kinds ``QueryEngine(executor=...)`` accepts.
EXECUTORS = ("thread", "process")


@dataclasses.dataclass
class EngineStats:
    """A snapshot of one engine's serving counters."""

    #: queries answered (cache hits included).
    queries: int
    #: structural counters aggregated over every *executed* query
    #: (cache hits execute nothing and add nothing here).
    query_stats: QueryStats
    #: cache counters at snapshot time.
    cache: CacheStats
    #: per-index structural stats rows (``kind`` distinguishes
    #: ``"sharded"`` engines from ``"live"`` ingestion planes).
    indexes: list[dict]
    #: queries answered broken down by mode (``search`` / ``knn`` /
    #: ``exists`` / ``count``; batch members count as ``search``).
    queries_by_mode: dict = dataclasses.field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict form for report tables and the CLI."""
        return {
            "queries": self.queries,
            "queries_by_mode": dict(self.queries_by_mode),
            "query_stats": self.query_stats.as_dict(),
            "cache": self.cache.as_dict(),
            "indexes": self.indexes,
        }


class QueryEngine:
    """Concurrent, cached twin-query serving over named sharded indexes.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.engine import QueryEngine
    >>> series = np.cumsum(np.random.default_rng(1).normal(size=3000))
    >>> with QueryEngine(cache_capacity=32) as engine:
    ...     _ = engine.build("demo", series, length=50,
    ...                      shards=2, normalization="none")
    ...     first = engine.query("demo", series[100:150], epsilon=0.25)
    ...     again = engine.query("demo", series[100:150], epsilon=0.25)
    >>> again is first  # served from the cache
    True
    """

    def __init__(
        self,
        registry: IndexRegistry | None = None,
        *,
        cache_capacity: int = 256,
        max_workers: int | None = None,
        executor: str = "thread",
        metrics: Any = None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        trace_sample: float = 1.0,
    ):
        if executor not in EXECUTORS:
            raise InvalidParameterError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self._registry = registry if registry is not None else IndexRegistry()
        self._cache = QueryCache(cache_capacity)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-engine"
        )
        self._executor_kind = executor
        self._fanout_pool = None
        self._fanout_workers = 0
        # Planes built in memory have no archive for workers to open;
        # process mode spools them to raw (mmap) archives here, once
        # per (name, generation), and removes the tree on close().
        self._spool: str | None = None  # lint: guarded-by(_spool_lock)
        self._spool_seq = 0  # lint: guarded-by(_spool_lock)
        self._spool_lock = threading.Lock()
        if executor == "process":
            self._fanout_workers = max_workers or available_cpu_count()
            self._fanout_pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._fanout_workers
            )
        self._lock = threading.Lock()
        self._queries = 0  # lint: guarded-by(_lock)
        self._queries_by_mode = {mode: 0 for mode in MODES}  # lint: guarded-by(_lock)
        self._query_stats = QueryStats()  # lint: guarded-by(_lock)
        # Monotonic origin for lifetime QPS: a wall-clock step (NTP)
        # must not inflate or zero the exported rate.
        self._started = time.perf_counter()
        # ``metrics``: None/True -> the process default registry, False
        # -> the shared no-op registry (instrumentation off), or an
        # explicit MetricsRegistry. Metric handles are resolved once
        # here so the hot path pays no registry lookups.
        self._metrics = resolve_registry(metrics)
        self._tracer = Tracer(capacity=trace_capacity, sample=trace_sample)
        self._instrument()

    def _instrument(self) -> None:
        registry = self._metrics
        queries = registry.counter(
            "repro_engine_queries_total",
            "Queries answered by the engine, cache hits included.",
            labels=("mode",),
        )
        latency = registry.histogram(
            "repro_engine_query_seconds",
            "End-to-end engine query latency in seconds.",
            labels=("mode",),
        )
        self._mode_metrics = {
            mode: (queries.labels(mode=mode), latency.labels(mode=mode))
            for mode in MODES
        }
        self._index_queries = registry.counter(
            "repro_engine_index_queries_total",
            "Queries answered per registered index.",
            labels=("index",),
        )
        registry.gauge(
            "repro_fanout_processes",
            "Worker processes serving shard/segment fan-out "
            "(0 under the thread executor).",
        ).set(self._fanout_workers)
        # Scrape-time gauges. NOTE: in a shared (default) registry the
        # callbacks bind to *this* engine — processes serving several
        # engines should give each its own MetricsRegistry.
        registry.gauge(
            "repro_engine_qps",
            "Mean queries per second since the engine started.",
        ).set_function(self._qps)
        for stat in ("hits", "misses", "evictions", "size"):
            registry.gauge(
                f"repro_engine_cache_{stat}",
                f"Result cache {stat} at scrape time.",
            ).set_function(
                lambda stat=stat: getattr(self._cache.stats(), stat)
            )
        registry.gauge(
            "repro_engine_cache_hit_rate",
            "Result cache hit rate at scrape time (hits / lookups).",
        ).set_function(lambda: self._cache.stats().hit_rate)

    def _qps(self) -> float:
        with self._lock:
            queries = self._queries
        return queries / max(1e-9, time.perf_counter() - self._started)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def registry(self) -> IndexRegistry:
        """The registry owning this engine's indexes."""
        return self._registry

    @property
    def cache(self) -> QueryCache:
        """The shared result cache."""
        return self._cache

    def close(self) -> None:
        """Shut the fan-out pools down and remove the process spool
        (idempotent); indexes stay usable through the registry."""
        self._pool.shutdown(wait=True)
        if self._fanout_pool is not None:
            self._fanout_pool.shutdown(wait=True)
        with self._spool_lock:
            spool, self._spool = self._spool, None
        if spool is not None:
            shutil.rmtree(spool, ignore_errors=True)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Index management (delegates to the registry)
    # ------------------------------------------------------------------
    def build(self, name: str, series: Any, length: int, **build_options: Any) -> SubsequenceIndex:
        """Build and register a query plane (see
        :meth:`IndexRegistry.build`; the default ``method="sharded"``
        builds a fan-out sharded index with shards frozen into flat
        read-optimized arrays unless ``frozen=False`` is passed, and
        any registered plane name — ``"sweepline"``, ``"kvindex"``,
        ``"isax"``, ``"tsindex"``, ``"frozen"``, ``"live"`` — builds
        through the same factory).

        Rebuilding an existing name (``overwrite=True``) also drops the
        cache, so the new index can never serve the old one's results.
        Mutating :attr:`registry` directly bypasses this invalidation —
        route index changes through the engine.
        """
        index = self._registry.build(name, series, length, **build_options)
        if build_options.get("overwrite"):
            # Correctness comes from generation-stamped cache keys (a
            # replaced index's entries become unreachable); the clear
            # just releases their memory promptly.
            self._clear_cache(f"rebuild of {name!r}")
        return index

    def add(self, name: str, index: Any, *, overwrite: bool = False) -> Any:
        """Register a plane built elsewhere (any
        :class:`~repro.indices.base.SubsequenceIndex`), invalidating
        the cache when it may replace an existing name."""
        self._registry.add(name, index, overwrite=overwrite)
        if overwrite:
            self._clear_cache(f"re-registration of {name!r}")
        return index

    def add_live(self, name: str, index: Any, *, overwrite: bool = False) -> Any:
        """Register a :class:`~repro.live.LiveTwinIndex` ingestion plane
        for serving (see :meth:`IndexRegistry.add_live`).

        Cached results for live planes are keyed on the plane's
        *mutation generation*: every accepted append moves it, so a
        stale pre-append result can never be served afterwards — no
        blanket cache clear, entries for other indexes stay warm.
        """
        self._registry.add_live(name, index, overwrite=overwrite)
        if overwrite:
            # As in build(): correctness comes from generation-stamped
            # keys; the clear just releases unreachable entries early.
            self._clear_cache(f"live re-registration of {name!r}")
        return index

    def append(self, name: str, readings: Any) -> int:
        """Append readings to the live plane registered under ``name``;
        returns the number of newly indexed windows.

        Invalidation is scoped to this plane's generation: the append
        bumps its mutation counter, so every subsequent query computes
        fresh results under a new cache key while other indexes' cached
        entries remain served.
        """
        index = self._registry.get(name)
        append = getattr(index, "append", None)
        if append is None:
            raise InvalidParameterError(
                f"index {name!r} is not appendable; register a live "
                "plane with add_live() to serve a growing series"
            )
        return append(readings)

    def load(self, name: str, path: Any, *, overwrite: bool = False) -> ShardedTSIndex:
        """Restore an index from disk and register it (see
        :meth:`IndexRegistry.load`), invalidating the cache when it
        may replace an existing name."""
        index = self._registry.load(name, path, overwrite=overwrite)
        if overwrite:
            self._clear_cache(f"reload of {name!r}")
        return index

    def evict(self, name: str) -> ShardedTSIndex:
        """Evict the named index and drop its cached results."""
        engine = self._registry.evict(name)
        # Cached entries key on the index name; a blanket clear keeps
        # eviction O(1) and correctness obvious (a rebuilt index under
        # the same name must never serve the old index's results).
        self._clear_cache(f"eviction of {name!r}")
        return engine

    def _clear_cache(self, reason: str) -> None:
        self._cache.clear()
        _log.debug("query cache invalidated: %s", reason)

    # ------------------------------------------------------------------
    # Fan-out executor
    # ------------------------------------------------------------------
    @property
    def executor_kind(self) -> str:
        """``"thread"`` or ``"process"`` — the fan-out executor this
        engine serves shard/segment work on."""
        return self._executor_kind

    def _fanout(self, index) -> object:
        """The executor a plane's fan-out should run on: the process
        pool when configured (spooling in-memory sharded planes to raw
        archives first, so workers can open them by path), else the
        shared thread pool."""
        if self._fanout_pool is None:
            return self._pool
        self._ensure_process_servable(index)
        return self._fanout_pool

    def _ensure_process_servable(self, index) -> None:
        """Give an unarchived sharded plane an on-disk identity for
        process workers: save it once as a raw (mmap) archive in the
        engine spool and attach the path. Planes loaded from disk or
        saved explicitly already carry one; other plane kinds serve
        through their own archives (live) or fall back to the serial
        path inside :func:`~repro._util.fan_out` — byte-identical
        either way."""
        if (
            not isinstance(index, ShardedTSIndex)
            or index.archive_path is not None
        ):
            return
        with self._spool_lock:
            if index.archive_path is not None:
                return
            if self._spool is None:
                self._spool = tempfile.mkdtemp(prefix="repro-spool-")
            from ..persistence import save_index  # lazy: avoids cycle

            self._spool_seq += 1
            path = os.path.join(self._spool, f"plane-{self._spool_seq}")
            save_index(index, path, format="raw")
            index.attach_archive(path)
            _log.debug("spooled %r for process fan-out", path)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def query(
        self,
        name: str,
        query: Any,
        epsilon: float,
        *,
        verification: str = "bulk",
        domain: str = "index",
        use_cache: bool = True,
        timeout: float | None = None,
        degraded: bool = False,
    ) -> SearchResult:
        """One twin query against the named plane.

        ``timeout`` bounds each fan-out part (shard/segment) on planes
        declaring :data:`~repro.query.capabilities.CAP_FANOUT_TIMEOUT`
        (the planner drops it elsewhere); parts missing the deadline
        fail fast with :class:`~repro.exceptions.ShardTimeoutError`
        unless ``degraded=True``, which instead serves the parts that
        answered and marks the result's ``degraded`` record. Degraded
        results are never cached — a later complete answer must not be
        shadowed by a partial one.

        The query routes through the unified pipeline: a
        :class:`~repro.query.QuerySpec` is planned against the plane's
        capabilities (options the plane does not understand are
        dropped, so the same call serves a sweepline and a sharded
        engine alike). Queries of any length ``m <= l`` are served —
        shorter ones run on the plane's variable-length prefix kernels
        (or the planner's prefix scan), and the cache key's query
        digest covers the value bytes *and shape*, so results for one
        length are never served to another. Cache hits return the
        previously computed
        :class:`~repro.core.stats.SearchResult` object itself; misses
        execute shard-parallel on the engine pool and populate the
        cache. Treat results as immutable (the library never mutates
        them). Keys derive from the spec's *effective* parameters plus
        the plane's registration/mutation *generation*, so a miss
        computed against an index that is rebuilt mid-flight lands
        under a key the rebuilt index never reads — the new index can
        never serve the old one's results.
        """
        counter, latency = self._mode_metrics["search"]
        trace = self._tracer.start("search", index=name)
        token = activate_trace(trace) if trace else None
        started = time.perf_counter()
        try:
            index, generation = self._registry.get_with_generation(name)
            options = {"verification": verification}
            if timeout is not None:
                options["timeout"] = timeout
            if degraded:
                options["degraded"] = True
                # A degraded answer is partial by design; caching it
                # would serve the hole to later complete-answer calls.
                use_cache = False
            spec = QuerySpec(
                query=query,
                mode="search",
                epsilon=epsilon,
                domain=domain,
                options=options,
            )
            with trace.span("plan"):
                executed = plan(index, spec)

            def execute() -> SearchResult:
                with trace.span("execute"):
                    result = executed.execute(executor=self._fanout(index))
                self._record(result.stats)
                return result

            self._count_query("search")
            if not use_cache:
                return execute()
            key = self._spec_key(spec, executed, name, generation)
            return self._cache.get_or_compute(key, execute)
        finally:
            latency.observe(time.perf_counter() - started)
            counter.inc()
            self._index_queries.labels(index=name).inc()
            if token is not None:
                deactivate_trace(token)
            self._tracer.finish(trace)

    def knn(self, name: str, query: Any, k: int, *, exclude: Any = None) -> SearchResult:
        """k-NN twin query against the named plane (never cached: the
        result depends on ``k`` and ``exclude``, and k-NN traffic rarely
        repeats exactly). Planes without a native k-NN kernel are
        served by the planner's exact scan."""
        def run() -> SearchResult:
            index = self._registry.get(name)
            spec = QuerySpec(query=query, mode="knn", k=k, exclude=exclude)
            result = plan(index, spec).execute(executor=self._fanout(index))
            self._record(result.stats)
            return result

        return self._serve("knn", name, run)

    def exists(self, name: str, query: Any, epsilon: float) -> bool:
        """Whether the named plane holds any twin of ``query`` within
        ``epsilon`` (early-exit on planes with a native ``exists``)."""
        def run() -> bool:
            index = self._registry.get(name)
            spec = QuerySpec(query=query, mode="exists", epsilon=epsilon)
            return plan(index, spec).execute(executor=self._fanout(index))

        return self._serve("exists", name, run)

    def count(self, name: str, query: Any, epsilon: float) -> int:
        """Number of twins in the named plane (non-materializing where
        the plane or the planner supports it)."""
        def run() -> int:
            index = self._registry.get(name)
            spec = QuerySpec(query=query, mode="count", epsilon=epsilon)
            return plan(index, spec).execute(executor=self._fanout(index))

        return self._serve("count", name, run)

    def batch(
        self,
        name: str,
        queries: Any,
        epsilon: float,
        *,
        use_cache: bool = True,
        **search_options: Any,
    ) -> BatchResult:
        """A whole workload against the named plane.

        Queries fan out across the engine pool (each walking its shards
        serially — the right split for many small queries); each query
        still consults the shared cache, so repeated workloads are
        mostly hits. Under the process executor the split flips: query
        closures cannot cross a process boundary, so the query loop
        runs here and each query fans its *shards* across the worker
        processes — identical results either way.
        """
        index, generation = self._registry.get_with_generation(name)
        queries = list(queries)
        # Key on the *effective* verification mode so batch() and
        # query() share cache entries for the same logical query.
        search_options.setdefault("verification", "bulk")
        counter, latency = self._mode_metrics["batch"]
        # Member queries run on pool threads, which do not inherit the
        # trace context variable — the batch gets one envelope trace.
        trace = self._tracer.start("batch", index=name,
                                   queries=len(queries))
        token = activate_trace(trace) if trace else None
        started = time.perf_counter()
        fanout = (
            None if self._fanout_pool is None else self._fanout(index)
        )

        def one(query) -> SearchResult:
            self._count_query()
            spec = QuerySpec(
                query=query,
                mode="search",
                epsilon=epsilon,
                options=dict(search_options),
            )
            executed = plan(index, spec)

            def execute() -> SearchResult:
                result = executed.execute(executor=fanout)
                self._record(result.stats)
                return result

            if not use_cache:
                return execute()
            key = self._spec_key(spec, executed, name, generation)
            return self._cache.get_or_compute(key, execute)

        try:
            with trace.span("execute"):
                if fanout is None and len(queries) > 1:
                    results = list(self._pool.map(one, queries))
                else:
                    results = [one(query) for query in queries]
            with trace.span("merge"):
                return batch_result(results, epsilon)
        finally:
            latency.observe(time.perf_counter() - started)
            counter.inc()
            self._index_queries.labels(index=name).inc()
            if token is not None:
                deactivate_trace(token)
            self._tracer.finish(trace)

    @staticmethod
    def _spec_key(spec: QuerySpec, executed, name: str, generation) -> tuple:
        """The cache key for one planned spec: query digest + effective
        (capability-filtered) options + plane name and generation. The
        arrival domain is part of the key — the same raw values mean a
        different query after raw→index mapping."""
        return query_key(
            spec.query,
            spec.epsilon,
            index=name,
            generation=generation,
            mode=spec.mode,
            domain=spec.domain,
            **{str(k): v for k, v in executed.options.items()},
        )

    def _serve(self, mode: str, name: str, run):
        """Wrap one serving call in the per-mode instrumentation: a
        (possibly sampled-out) trace, the latency histogram, and the
        mode / index counters."""
        counter, latency = self._mode_metrics[mode]
        trace = self._tracer.start(mode, index=name)
        token = activate_trace(trace) if trace else None
        started = time.perf_counter()
        try:
            self._count_query(mode)
            return run()
        finally:
            latency.observe(time.perf_counter() - started)
            counter.inc()
            self._index_queries.labels(index=name).inc()
            if token is not None:
                deactivate_trace(token)
            self._tracer.finish(trace)

    # ------------------------------------------------------------------
    # Stats and observability
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """A consistent snapshot of serving, cache and index stats."""
        with self._lock:
            queries = self._queries
            queries_by_mode = dict(self._queries_by_mode)
            query_stats = dataclasses.replace(self._query_stats)
        return EngineStats(
            queries=queries,
            query_stats=query_stats,
            cache=self._cache.stats(),
            indexes=self._registry.stats_all(),
            queries_by_mode=queries_by_mode,
        )

    def metrics(self) -> Any:
        """The :class:`~repro.obs.MetricsRegistry` this engine records
        into (export it with :func:`repro.obs.to_prometheus` or
        :func:`repro.obs.to_json`)."""
        return self._metrics

    @property
    def tracer(self) -> Any:
        """The engine's :class:`~repro.obs.Tracer` (sampling policy +
        ring buffer of recent traces)."""
        return self._tracer

    def traces(self) -> list:
        """Recently completed :class:`~repro.obs.QueryTrace` objects,
        oldest first (bounded by the constructor's ``trace_capacity``)."""
        return self._tracer.traces()

    def _count_query(self, mode: str = "search") -> None:
        with self._lock:
            self._queries += 1
            self._queries_by_mode[mode] = (
                self._queries_by_mode.get(mode, 0) + 1
            )

    def _record(self, stats: QueryStats) -> None:
        with self._lock:
            self._query_stats = self._query_stats.merge(stats)

    def __repr__(self) -> str:
        return (
            f"QueryEngine(indexes={self._registry.names()}, "
            f"cache={self._cache!r})"
        )
