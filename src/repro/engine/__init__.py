"""repro.engine — sharded, cached, concurrent twin-query serving.

The paper's library answers one query against one in-memory index; this
subsystem turns that into a query-serving engine:

* :class:`ShardedTSIndex` — partitions a series into overlapping chunks
  (overlap ``length - 1``, so no window is lost), builds one TS-Index
  per shard in parallel (frozen into flat
  :class:`~repro.core.frozen.FrozenTSIndex` arrays by default), and
  fans ``search`` / ``knn`` / ``search_batch`` out across the shards
  with exact result merging;
* :class:`QueryCache` — a thread-safe LRU over (query digest, ε,
  options) with hit/miss/eviction counters;
* :class:`IndexRegistry` — a named-index owner with build / evict /
  persist (via :mod:`repro.persistence`) and per-index stats;
* :class:`QueryEngine` — the front door composing all three behind a
  thread pool, safe for concurrent callers.

Sharded execution is *exactly* equivalent to a monolithic index — the
shard window sources are zero-copy views of the monolithic one (see
:meth:`repro.core.windows.WindowSource.shard`), enforced by the
equivalence property tests.
"""

from .cache import CacheStats, QueryCache, query_key
from .executor import EngineStats, QueryEngine
from .registry import IndexRegistry
from .sharding import ShardedTSIndex, default_shard_count, shard_spans

__all__ = [
    "CacheStats",
    "EngineStats",
    "IndexRegistry",
    "QueryCache",
    "QueryEngine",
    "ShardedTSIndex",
    "default_shard_count",
    "query_key",
    "shard_spans",
]
