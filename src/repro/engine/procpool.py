"""The process fan-out worker protocol.

Thread fan-out ships closures over live index objects; a process pool
cannot (the index arrays would be pickled per call — gigabytes per
query). Instead, process fan-out ships :class:`ArchiveTask` values: a
tiny picklable record naming *an archive path*, the plane entry point
to call, and the (already prepared, query-sized) call arguments. Each
worker process opens the archive once by path and caches it for its
lifetime — with raw (mmap) archives every worker maps the same files,
so N processes share one page-cache copy of the index and exactly zero
index data crosses the process boundary per query.

Byte-identity with the thread path holds because the worker replays
the thread closure's exact call against an index rebuilt from the same
bytes: prepared queries re-prepare to themselves
(:meth:`~repro.core.windows.WindowSource.prepare_query` is
idempotent), per-window archives embed the monolithic rolling
statistics, and :class:`~repro.core.stats.QueryStats` carries only
structural counters — no wall-clock fields.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..exceptions import InvalidParameterError

#: Archives this worker process has already opened, by path. Bounded in
#: practice by the number of distinct planes a deployment serves; raw
#: archives cost address space, not private memory.
_CACHE: dict[str, object] = {}

#: Plane entry points a task may invoke (the read-only query surface —
#: a task must never be able to name arbitrary attributes).
ALLOWED_CALLS = frozenset(
    {
        "search",
        "search_varlength",
        "search_batch",
        "knn",
        "exists",
        "count",
        "prefix_search_part",
    }
)


def open_archive(path: str) -> Any:
    """The worker-side archive cache: load ``path`` on first use (mmap
    for raw archives), then serve every later task from the cached
    index object."""
    index = _CACHE.get(path)
    if index is None:
        from ..persistence import load_index  # lazy: keeps fork cheap

        _CACHE[path] = index = load_index(path)
    return index


@dataclasses.dataclass(frozen=True, eq=False)
class ArchiveTask:
    """One picklable unit of process fan-out: call ``call`` on the
    index stored at ``path`` (or on its ``shard``-th shard) with the
    given arguments. Self-executing — ``task()`` returns the plane
    call's result — so :func:`repro._util.fan_out` can route tasks
    through :func:`repro._util.call_task` on any executor, including
    none (the serial path runs them in-process against the same
    archive, byte-identical)."""

    path: str
    call: str
    shard: int | None = None
    args: tuple = ()
    kwargs: dict = dataclasses.field(default_factory=dict)

    def __call__(self):
        if self.call not in ALLOWED_CALLS:
            raise InvalidParameterError(
                f"archive task call {self.call!r} is not a fan-out entry "
                f"point (allowed: {sorted(ALLOWED_CALLS)})"
            )
        target = open_archive(self.path)
        if self.shard is not None:
            target = target.shards[self.shard]
        if self.call == "prefix_search_part":
            from ..query.varlength import prefix_search_part

            return prefix_search_part(target, *self.args, **self.kwargs)
        return getattr(target, self.call)(*self.args, **self.kwargs)
