"""Named-index registry: owns built query planes for multi-tenant serving.

A server process typically holds several built indexes at once (one per
archive / window length / regime). :class:`IndexRegistry` is the owner:
it builds planes under caller-chosen names, hands out live references,
evicts them, persists them through :mod:`repro.persistence`, and
reports per-index stats. All operations are thread-safe; builds for
distinct names can proceed concurrently (the registry lock is only held
around map mutation, never around a build).

Any :class:`~repro.indices.base.SubsequenceIndex` registers — the
default :meth:`IndexRegistry.build` produces a sharded
:class:`~repro.engine.sharding.ShardedTSIndex`, but every registered
plane name (``method="sweepline"``, ``"kvindex"``, ``"isax"``,
``"tsindex"``, ``"frozen"``, ``"live"``) builds and serves through the
same front door, the planner synthesizing whatever the plane lacks.

Mutable :class:`~repro.live.LiveTwinIndex` planes register through
:meth:`IndexRegistry.add_live`. For those, the generation reported by
:meth:`get_with_generation` incorporates the plane's **mutation
counter**, so cache entries keyed on ``(name, generation)`` become
unreachable the moment an append lands — the generation-scoped
invalidation :class:`~repro.engine.executor.QueryEngine` relies on.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..core.normalization import Normalization
from ..core.tsindex import TSIndexParams
from ..exceptions import IndexNotBuiltError, InvalidParameterError
from ..indices.base import SubsequenceIndex, create_method
from .sharding import ShardedTSIndex


class IndexRegistry:
    """A thread-safe name → :class:`ShardedTSIndex` mapping with
    ownership semantics (build, evict, persist, stats).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.engine import IndexRegistry
    >>> registry = IndexRegistry()
    >>> series = np.cumsum(np.random.default_rng(0).normal(size=2000))
    >>> engine = registry.build(
    ...     "demo", series, length=50, shards=2, normalization="none"
    ... )
    >>> registry.names()
    ['demo']
    >>> registry.get("demo") is engine
    True
    """

    def __init__(self):
        # ShardedTSIndex engines and LiveTwinIndex planes, by name.
        self._engines: dict[str, object] = {}  # lint: guarded-by(_lock)
        self._built_at: dict[str, float] = {}  # lint: guarded-by(_lock)
        # Monotonic per-name registration counter. Callers that cache
        # results key on (name, generation) so an in-flight computation
        # against a replaced index can never be served for its
        # successor (see QueryEngine).
        self._generations: dict[str, int] = {}  # lint: guarded-by(_lock)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def build(
        self,
        name: str,
        series: Any,
        length: int,
        *,
        method: str = "sharded",
        normalization: Any = Normalization.GLOBAL,
        shards: int | None = None,
        params: TSIndexParams | None = None,
        max_workers: int | None = None,
        frozen: bool = True,
        overwrite: bool = False,
        **method_options: Any,
    ) -> SubsequenceIndex:
        """Build a query plane and register it under ``name``.

        The default ``method="sharded"`` builds a fan-out
        :class:`ShardedTSIndex` (shards frozen into flat read-optimized
        arrays unless ``frozen=False``); any other registered plane
        name — paper method or extended plane — builds through
        :func:`~repro.indices.base.create_method` with
        ``method_options`` forwarded. The sharded-only parameters
        (``shards``/``max_workers``/``frozen``) are rejected for other
        methods rather than silently ignored. Refuses to clobber an
        existing name unless ``overwrite=True`` (rebuilding a live
        index should be a deliberate act).
        """
        name = self._check_name(name)
        if not overwrite and name in self._engines:
            raise InvalidParameterError(
                f"index {name!r} already exists; pass overwrite=True to rebuild"
            )
        if method == "sharded":
            engine = ShardedTSIndex.build(
                series,
                length,
                normalization=normalization,
                shards=shards,
                params=params,
                max_workers=max_workers,
                frozen=frozen,
                **method_options,
            )
        else:
            sharded_only = {
                "shards": (shards, None),
                "max_workers": (max_workers, None),
                "frozen": (frozen, True),
            }
            misapplied = [
                key
                for key, (value, default) in sharded_only.items()
                if value != default
            ]
            if misapplied:
                raise InvalidParameterError(
                    f"{', '.join(misapplied)} only apply to "
                    f"method='sharded', not method={method!r}"
                )
            if params is not None:
                method_options["params"] = params
            engine = create_method(
                method,
                series,
                length,
                normalization=normalization,
                **method_options,
            )
        self.add(name, engine, overwrite=overwrite)
        return engine

    def add(
        self, name: str, engine: SubsequenceIndex, *, overwrite: bool = False
    ) -> None:
        """Register a plane built elsewhere (e.g. loaded from disk).

        Accepts any :class:`~repro.indices.base.SubsequenceIndex` —
        sharded engines, live planes, frozen snapshots or the paper
        methods all serve through the same registry.
        """
        if not isinstance(engine, SubsequenceIndex):
            raise InvalidParameterError(
                "registry entries must implement the SubsequenceIndex "
                f"query surface, got {type(engine).__name__}"
            )
        self._register(name, engine, overwrite=overwrite)

    def add_live(self, name: str, index: Any, *, overwrite: bool = False) -> None:
        """Register a mutable :class:`~repro.live.LiveTwinIndex` plane.

        Live entries serve the same query surface; their cache
        generation additionally tracks the plane's mutation counter, so
        results cached before an append are never served after it.
        """
        from ..live import LiveTwinIndex  # lazy: live imports core only

        if not isinstance(index, LiveTwinIndex):
            raise InvalidParameterError(
                "add_live expects a LiveTwinIndex, got "
                f"{type(index).__name__}"
            )
        self._register(name, index, overwrite=overwrite)

    def _register(self, name: str, engine, *, overwrite: bool) -> None:
        name = self._check_name(name)
        with self._lock:
            if not overwrite and name in self._engines:
                raise InvalidParameterError(
                    f"index {name!r} already exists; pass overwrite=True"
                )
            self._engines[name] = engine
            self._built_at[name] = time.time()  # lint: disable=wall-clock epoch timestamp, not a duration
            self._generations[name] = self._generations.get(name, 0) + 1

    def get(self, name: str) -> ShardedTSIndex:
        """The live engine registered under ``name``."""
        return self.get_with_generation(name)[0]

    def get_with_generation(self, name: str) -> tuple[ShardedTSIndex, object]:
        """The live engine plus its cache generation (atomic).

        The generation increments every time ``name`` is (re)registered,
        so ``(name, generation)`` uniquely identifies one built index
        across rebuilds. For mutable planes (anything exposing a
        ``mutations`` counter, i.e. :class:`~repro.live.LiveTwinIndex`)
        the generation is the pair ``(registration, mutations)``: every
        accepted append moves it, so cache entries keyed on the old
        value become unreachable without any explicit invalidation.
        """
        with self._lock:
            try:
                engine = self._engines[name]
                generation = self._generations[name]
            except KeyError:
                known = ", ".join(sorted(self._engines)) or "<none>"
                raise IndexNotBuiltError(
                    f"no index named {name!r} (built: {known})"
                ) from None
        mutations = getattr(engine, "mutations", None)
        if mutations is not None:
            return engine, (generation, mutations)
        return engine, generation

    def evict(self, name: str) -> ShardedTSIndex:
        """Remove and return the engine under ``name`` (the last live
        reference unless a caller kept one)."""
        with self._lock:
            try:
                engine = self._engines.pop(name)
            except KeyError:
                raise IndexNotBuiltError(f"no index named {name!r}") from None
            self._built_at.pop(name, None)
            return engine

    def names(self) -> list[str]:
        """Registered names, sorted."""
        with self._lock:
            return sorted(self._engines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def __contains__(self, name) -> bool:
        with self._lock:
            return name in self._engines

    # ------------------------------------------------------------------
    # Persistence (via repro.persistence)
    # ------------------------------------------------------------------
    def save(self, name: str, path: Any, *, format: str = "npz") -> None:
        """Persist the plane under ``name`` — a compressed ``.npz``
        archive by default, or with ``format="raw"`` a directory of
        uncompressed per-array files that later loads open O(1) via
        ``mmap`` (see :func:`repro.persistence.save_index`)."""
        engine = self.get(name)
        if getattr(engine, "method_name", "") == "live":
            raise InvalidParameterError(
                f"index {name!r} is a live plane; it persists through its "
                "write-ahead-log directory (LiveTwinIndex.create/recover), "
                "not through snapshot archives"
            )
        from ..persistence import save_index  # lazy: avoids import cycle

        save_index(engine, path, format=format)

    def load(self, name: str, path: Any, *, overwrite: bool = False) -> ShardedTSIndex:
        """Restore an engine from ``path`` and register it as ``name``."""
        from ..persistence import load_index  # lazy: avoids import cycle

        engine = load_index(path)
        if not isinstance(engine, ShardedTSIndex):
            raise InvalidParameterError(
                f"archive {path!r} holds a {type(engine).__name__}, "
                "not a sharded engine"
            )
        self.add(name, engine, overwrite=overwrite)
        return engine

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self, name: str) -> dict:
        """Structural stats for one index (shape, shards/segments,
        build cost). Live planes report their LSM shape (segments,
        delta, seals, compactions) instead of shard rows; other
        non-sharded planes report a generic structural row keyed by
        their plane kind. Every row carries the plane's declared
        ``capabilities`` (sorted), so operators can see at a glance
        which kernels — including variable-length ``search`` — a
        registered plane serves natively."""
        from ..query.capabilities import capabilities_of

        engine = self.get(name)
        with self._lock:
            built_at = self._built_at.get(name, 0.0)
        capabilities = sorted(capabilities_of(engine))
        if getattr(engine, "method_name", "") == "live":
            # A live plane: its own stats snapshot carries the shape.
            return {"name": name, "kind": "live", "built_at": built_at,
                    "capabilities": capabilities, **engine.stats()}
        if not isinstance(engine, ShardedTSIndex):
            # A generic plane (paper method or frozen snapshot).
            build = engine.build_stats
            return {
                "name": name,
                "kind": engine.method_name or type(engine).__name__,
                "windows": engine.source.count,
                "length": engine.source.length,
                "normalization": engine.source.normalization.value,
                "nodes": build.nodes,
                "splits": build.splits,
                "build_seconds": round(build.seconds, 4),
                "built_at": built_at,
                "capabilities": capabilities,
            }
        build = engine.build_stats
        return {
            "name": name,
            "kind": "sharded",
            "windows": engine.size,
            "length": engine.length,
            "normalization": engine.source.normalization.value,
            "shards": engine.shard_count,
            "frozen": engine.frozen,
            "nodes": build.nodes,
            "splits": build.splits,
            "build_seconds": round(build.seconds, 4),
            "built_at": built_at,
            "capabilities": capabilities,
            "shard_stats": engine.shard_stats(),
        }

    def stats_all(self) -> list[dict]:
        """Stats rows for every registered index."""
        return [self.stats(name) for name in self.names()]

    def __repr__(self) -> str:
        return f"IndexRegistry(indexes={self.names()})"

    # ------------------------------------------------------------------
    @staticmethod
    def _check_name(name) -> str:
        if not isinstance(name, str) or not name.strip():
            raise InvalidParameterError(
                f"index name must be a non-empty string, got {name!r}"
            )
        return name
