"""Sharded TS-Index: partitioned build and fan-out query execution.

A :class:`ShardedTSIndex` splits the position range of a series into
contiguous spans, builds one :class:`~repro.core.tsindex.TSIndex` per
span and answers queries by fanning out across the shards and merging.
Consecutive shards cover value chunks that overlap by ``length - 1``
points, so every window of the series belongs to exactly one shard and
no window is lost at a boundary. Shard window sources are zero-copy
views created by :meth:`~repro.core.windows.WindowSource.shard`, which
guarantees each shard window is bitwise identical to the corresponding
monolithic window — making sharded results *exactly* equal to the
monolithic ones, not merely approximately (enforced by the equivalence
property tests).

Shard builds run in parallel via :mod:`concurrent.futures`; queries can
run the per-shard work serially, on a caller-supplied executor, or on a
shard-count-sized private pool (see ``executor`` arguments).

By default shard trees are **frozen** after construction (see
:class:`~repro.core.frozen.FrozenTSIndex`): each shard becomes a flat
structure-of-arrays query plane with vectorized frontier traversal —
byte-identical answers, much lower per-query latency, and a batched
``search_batch`` path in which all queries share one traversal per
shard. Pass ``frozen=False`` to keep dynamic pointer trees (e.g. when
shards must keep accepting inserts).
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any

from .._util import (
    available_cpu_count,
    call_task,
    check_non_negative,
    check_positive_int,
    fan_out,
    is_process_executor,
    map_with_executor,
)
from ..core.batch import BatchResult
from ..core.frozen import FrozenTSIndex
from ..core.normalization import Normalization
from ..core.stats import BuildStats, SearchResult
from ..core.tsindex import TSIndex, TSIndexParams
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError
from ..faults.failpoints import failpoint
from ..indices.base import SubsequenceIndex
from ..obs.metrics import HandleCache
from ..obs.trace import current_trace
from ..query.capabilities import (
    CAP_BATCHED_KERNEL,
    CAP_COUNT,
    CAP_EXECUTOR,
    CAP_EXISTS,
    CAP_FANOUT_TIMEOUT,
    CAP_KNN,
    CAP_SEARCH,
    CAP_SEARCH_BATCH,
    CAP_VARLENGTH,
    CAP_VERIFICATION,
)
from ..query.merge import batch_result, merge_knn, merge_offset_search
from ..query.registration import register_plane
from ..query.spec import normalize_exclude, prepare_values
from ..query.varlength import (
    is_prefix_query,
    prefix_search_part,
    tail_positions,
    verify_prefix,
)

#: A shard smaller than this many windows is pointless overhead; the
#: automatic shard count keeps every shard at least this large.
MIN_SHARD_WINDOWS = 256

#: Fan-out instrumentation (process default registry): per-shard
#: search latency and the cost of the final offset merge.
_metrics = HandleCache(
    lambda registry: (
        registry.histogram(
            "repro_shard_search_seconds",
            "Per-shard search latency during fan-out, in seconds.",
        ),
        registry.histogram(
            "repro_shard_merge_seconds",
            "Cross-shard result merge latency, in seconds.",
        ),
    )
)

#: Below this many total windows, frozen per-shard *batched* traversal
#: is slower than the plain per-query loop (its fixed per-level setup
#: outweighs the shared work on small trees — see
#: ``benchmarks/bench_frozen_traversal.py``), so ``search_batch`` only
#: auto-selects it for larger indexes.
BATCHED_MIN_WINDOWS = 50_000


def default_shard_count(window_count: int) -> int:
    """Shard count used when the caller does not pick one.

    One shard per available core (the cores this process may actually
    run on, not the machine's total), but never so many that a shard
    drops below :data:`MIN_SHARD_WINDOWS` windows, and always at least
    one.
    """
    cores = available_cpu_count()
    return max(1, min(cores, window_count // MIN_SHARD_WINDOWS))


def shard_spans(window_count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(window_count)`` into ``shards`` contiguous spans.

    Spans are half-open ``[start, stop)`` position ranges differing in
    size by at most one. Raises if there are more shards than windows.

    >>> shard_spans(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    shards = check_positive_int(shards, name="shards")
    if shards > window_count:
        raise InvalidParameterError(
            f"cannot split {window_count} windows into {shards} shards"
        )
    base, extra = divmod(window_count, shards)
    spans = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


@register_plane(
    "sharded",
    aliases=("shardedtsindex", "engine"),
    summary="partitioned TS-Index with fan-out serving (repro.engine)",
)
class ShardedTSIndex(SubsequenceIndex):
    """A TS-Index partitioned into per-span shard trees.

    Answers the same query surface as :class:`~repro.core.tsindex.TSIndex`
    (``search``, ``knn``, plus a batch entry point) with results merged
    across shards and positions re-offset to the global frame. Results
    are exactly those a monolithic index would return.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.engine import ShardedTSIndex
    >>> series = np.cumsum(np.random.default_rng(3).normal(size=4000))
    >>> engine = ShardedTSIndex.build(
    ...     series, length=64, shards=4, normalization="none"
    ... )
    >>> result = engine.search(series[300:364], epsilon=0.3)
    >>> 300 in result.positions
    True
    """

    method_name = "sharded"

    #: Native kernels the query planner may call directly (including
    #: ``executor=`` fan-out and the ``batched=`` shared traversal).
    capabilities = frozenset(
        {
            CAP_SEARCH,
            CAP_KNN,
            CAP_EXISTS,
            CAP_COUNT,
            CAP_SEARCH_BATCH,
            CAP_BATCHED_KERNEL,
            CAP_EXECUTOR,
            CAP_FANOUT_TIMEOUT,
            CAP_VARLENGTH,
            CAP_VERIFICATION,
        }
    )

    def __init__(
        self,
        source: WindowSource,
        starts: list[int],
        shards: list[TSIndex | FrozenTSIndex],
        params: TSIndexParams,
    ):
        self._source = source
        self._starts = starts
        self._shards = shards
        self._params = params
        self._archive_path: str | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        series: Any,
        length: int,
        *,
        normalization: Any = Normalization.GLOBAL,
        shards: int | None = None,
        params: TSIndexParams | None = None,
        max_workers: int | None = None,
        frozen: bool = True,
    ) -> "ShardedTSIndex":
        """Build shard trees over all ``length``-windows of ``series``.

        ``shards`` defaults to :func:`default_shard_count`; shard trees
        build concurrently on a thread pool of ``max_workers`` threads
        (default: one per shard, capped by the core count). With
        ``frozen=True`` (the default) each shard is frozen into a flat
        :class:`~repro.core.frozen.FrozenTSIndex` as soon as it is
        built — identical answers, faster serving; pass ``frozen=False``
        to keep dynamic pointer trees.
        """
        source = WindowSource(series, length, normalization)
        return cls.from_source(
            source,
            shards=shards,
            params=params,
            max_workers=max_workers,
            frozen=frozen,
        )

    @classmethod
    def from_source(
        cls,
        source: WindowSource,
        *,
        shards: int | None = None,
        params: TSIndexParams | None = None,
        max_workers: int | None = None,
        frozen: bool = True,
    ) -> "ShardedTSIndex":
        """Build from a prepared monolithic window source."""
        if shards is None:
            shards = default_shard_count(source.count)
        spans = shard_spans(source.count, shards)
        params = params or TSIndexParams()
        sources = [source.shard(start, stop) for start, stop in spans]
        if max_workers is None:
            max_workers = min(len(spans), available_cpu_count())

        def build_one(shard_source):
            tree = TSIndex.from_source(shard_source, params=params)
            return tree.freeze() if frozen else tree

        if max_workers > 1 and len(spans) > 1:
            with concurrent.futures.ThreadPoolExecutor(max_workers) as pool:
                trees = list(pool.map(build_one, sources))
        else:
            trees = [build_one(shard_source) for shard_source in sources]
        return cls(source, [start for start, _ in spans], trees, params)

    def freeze(self) -> "ShardedTSIndex":
        """A copy of this engine with every shard frozen (no-op view of
        already-frozen shards; dynamic shards are snapshotted)."""
        if self.frozen:
            return self
        return ShardedTSIndex(
            self._source,
            list(self._starts),
            [
                tree if isinstance(tree, FrozenTSIndex) else tree.freeze()
                for tree in self._shards
            ],
            self._params,
        )

    @classmethod
    def _from_prebuilt(
        cls,
        source: WindowSource,
        starts: list[int],
        shards: list[TSIndex],
        params: TSIndexParams,
    ) -> "ShardedTSIndex":
        """Internal hook used by the persistence layer."""
        return cls(source, starts, shards, params)

    # ------------------------------------------------------------------
    # Archive identity (process fan-out)
    # ------------------------------------------------------------------
    @property
    def archive_path(self) -> str:
        """The on-disk archive this engine was loaded from (or spooled
        to), ``None`` for purely in-memory engines. Process fan-out
        needs it: workers reopen the archive by path instead of
        receiving index data over the pipe."""
        return self._archive_path

    def attach_archive(self, path: Any) -> None:
        """Record ``path`` as this engine's on-disk identity (called by
        :func:`~repro.persistence.load_index`, and by
        :class:`~repro.engine.executor.QueryEngine` after spooling an
        in-memory engine). The archive must hold exactly this index."""
        self._archive_path = os.fspath(path)

    def _shard_tasks(self, call: str, args_for, kwargs_for=None) -> list:
        """One picklable :class:`~repro.engine.procpool.ArchiveTask`
        per shard — the process-pool replacement for the per-shard
        thread closures (``args_for(i)`` / ``kwargs_for(i)`` build the
        call arguments for shard ``i``)."""
        from .procpool import ArchiveTask  # lazy: only process fan-out

        if self._archive_path is None:
            raise InvalidParameterError(
                "process fan-out needs an on-disk archive to reopen in "
                "each worker; save this engine with save_index(..., "
                "format='raw') and reopen it with load_index(), or "
                "serve it through QueryEngine(executor='process') "
                "(which spools unarchived engines automatically)"
            )
        return [
            ArchiveTask(
                self._archive_path,
                call,
                shard=i,
                args=args_for(i),
                kwargs=kwargs_for(i) if kwargs_for is not None else {},
            )
            for i in range(len(self._shards))
        ]

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def source(self) -> WindowSource:
        """The monolithic window source the shards partition."""
        return self._source

    @property
    def params(self) -> TSIndexParams:
        """Tree construction parameters shared by every shard."""
        return self._params

    @property
    def length(self) -> int:
        """Indexed window length ``l``."""
        return self._source.length

    @property
    def size(self) -> int:
        """Total number of indexed windows across all shards."""
        return self._source.count

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def shards(self) -> tuple[TSIndex | FrozenTSIndex, ...]:
        """The per-span shard trees (read-only view)."""
        return tuple(self._shards)

    @property
    def frozen(self) -> bool:
        """True when every shard is a frozen (flat-array) index."""
        return all(
            isinstance(tree, FrozenTSIndex) for tree in self._shards
        )

    @property
    def spans(self) -> list[tuple[int, int]]:
        """Half-open global position spans, one per shard."""
        return [
            (start, start + tree.size)
            for start, tree in zip(self._starts, self._shards)
        ]

    @property
    def build_stats(self) -> BuildStats:
        """Shard build stats aggregated (seconds: max, the parallel
        critical path; counters: summed)."""
        merged = BuildStats()
        for tree in self._shards:
            stats = tree.build_stats
            merged.seconds = max(merged.seconds, stats.seconds)
            merged.windows += stats.windows
            merged.splits += stats.splits
            merged.height = max(merged.height, stats.height)
            merged.nodes += stats.nodes
        return merged

    def __repr__(self) -> str:
        return (
            f"ShardedTSIndex(windows={self.size}, length={self.length}, "
            f"shards={self.shard_count}, frozen={self.frozen})"
        )

    def shard_stats(self) -> list[dict]:
        """One diagnostics row per shard (for `engine stats` and tests)."""
        rows = []
        for (start, stop), tree in zip(self.spans, self._shards):
            rows.append(
                {
                    "span": f"[{start}, {stop})",
                    "windows": tree.size,
                    "height": tree.height,
                    "nodes": tree.node_count,
                    "splits": tree.build_stats.splits,
                    "build_seconds": round(tree.build_stats.seconds, 4),
                    "frozen": isinstance(tree, FrozenTSIndex),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(
        self,
        query: Any,
        epsilon: float,
        *,
        verification: str = "bulk",
        executor: concurrent.futures.Executor | None = None,
        timeout: float | None = None,
        degraded: bool = False,
    ) -> SearchResult:
        """All twins of ``query`` within Chebyshev ``ε``, shard-merged.

        Each shard runs Algorithm 1 over its span; shard-local positions
        are re-offset by the span start and concatenated (spans are
        disjoint and ascending, so the merged result is sorted without a
        final sort). With ``executor`` the per-shard searches run
        concurrently; structural counters are merged in shard order
        either way, so stats are deterministic. Queries shorter than
        ``l`` dispatch to :meth:`search_varlength`.

        ``timeout`` bounds the pooled fan-out, in seconds. On expiry
        the default fails fast with a typed
        :class:`~repro.exceptions.ShardTimeoutError` naming the shards
        that did not answer; ``degraded=True`` instead merges the shards
        that did and records exactly which on ``result.degraded``.
        """
        if is_prefix_query(query, self._source.length):
            return self.search_varlength(
                query, epsilon, verification=verification, executor=executor
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)
        shard_seconds, merge_seconds = _metrics()
        # Captured here because executor worker threads do not inherit
        # the trace context variable — the closure carries it across.
        trace = current_trace()

        def one(indexed) -> SearchResult:
            shard, tree = indexed
            with trace.span("execute", shard=shard):
                failpoint("shard.search", shard=shard)
                with shard_seconds.time():
                    return tree.search(
                        query, epsilon, verification=verification
                    )

        # Position re-offsetting happens in the shared merge kernel,
        # which pairs each result back with its span start. On a
        # process pool the closure is replaced by per-shard archive
        # tasks (same call, replayed in the worker against the same
        # bytes); timeout/degraded semantics are future-based and carry
        # over unchanged.
        if is_process_executor(executor):
            fn, items = call_task, self._shard_tasks(
                "search",
                lambda i: (query, epsilon),
                lambda i: {"verification": verification},
            )
        else:
            fn, items = one, list(enumerate(self._shards))
        outcome = fan_out(
            executor,
            fn,
            items,
            part="shard",
            timeout=timeout,
            degraded=degraded,
        )
        with trace.span("merge"):
            with merge_seconds.time():
                merged = merge_offset_search(
                    (start, result)
                    for start, result in zip(self._starts, outcome.results)
                    if result is not None
                )
        if outcome.degraded:
            merged.degraded = {
                "answered": list(outcome.answered),
                "missing": list(outcome.missing),
                "timeout": timeout,
            }
        return merged

    def search_varlength(
        self,
        query: Any,
        epsilon: float,
        *,
        verification: str = "bulk",
        executor: concurrent.futures.Executor | None = None,
    ) -> SearchResult:
        """All twins of a query of length ``m <= l``, shard-merged.

        Each shard runs the prefix-bounded traversal over its own tree
        and verifies its candidates against its zero-copy value chunk
        (chunks overlap by ``l - 1 >= m - 1`` values, so every
        ``m``-window of a shard's *window span* lies inside its chunk);
        the series tail — the ``l - m`` starts past the last indexed
        window — is covered by one direct scan. Shard window spans
        partition the position range, so the shared offset merge yields
        exactly the monolithic prefix-scan answer, byte for byte.
        ``m == l`` delegates to :meth:`search`.
        """
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query, varlength=True)
        if query.size == self.length:
            return self.search(
                query, epsilon, verification=verification, executor=executor
            )

        trace = current_trace()

        def one(indexed) -> SearchResult:
            shard, tree = indexed
            with trace.span("execute", shard=shard):
                return prefix_search_part(
                    tree, query, epsilon, verification=verification
                )

        if is_process_executor(executor):
            results = self._map(
                executor,
                call_task,
                self._shard_tasks(
                    "prefix_search_part",
                    lambda i: (query, epsilon),
                    lambda i: {"verification": verification},
                ),
            )
        else:
            results = self._map(executor, one, list(enumerate(self._shards)))
        parts = list(zip(self._starts, results))
        tail = tail_positions(self._source, query.size)
        with trace.span("verify", tail=len(tail)):
            parts.append(
                (
                    0,
                    verify_prefix(
                        self._source, query, tail, epsilon, mode=verification
                    ),
                )
            )
        with trace.span("merge"):
            return merge_offset_search(parts)

    def count(
        self,
        query: Any,
        epsilon: float,
        *,
        executor: concurrent.futures.Executor | None = None,
    ) -> int:
        """Number of twins — summed per shard, so the global result
        arrays are never materialized or merged (shorter queries derive
        from :meth:`search_varlength`)."""
        if is_prefix_query(query, self._source.length):
            return len(
                self.search_varlength(query, epsilon, executor=executor)
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)

        def one(tree: TSIndex) -> int:
            return tree.count(query, epsilon)

        if is_process_executor(executor):
            return sum(
                self._map(
                    executor,
                    call_task,
                    self._shard_tasks("count", lambda i: (query, epsilon)),
                )
            )
        return sum(self._map(executor, one, self._shards))

    def exists(self, query: Any, epsilon: float) -> bool:
        """Whether any twin exists — probes shards in span order and
        stops at the first hit (each shard's own ``exists`` early-exits
        internally too; shorter queries derive from
        :meth:`search_varlength`)."""
        if is_prefix_query(query, self._source.length):
            return len(self.search_varlength(query, epsilon)) > 0
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = prepare_values(self._source, query)
        return any(
            tree.exists(query, epsilon) for tree in self._shards
        )

    def knn(
        self,
        query: Any,
        k: int,
        *,
        exclude: tuple[int, int] | None = None,
        executor: concurrent.futures.Executor | None = None,
    ) -> SearchResult:
        """The ``k`` globally nearest windows, merged across shards.

        Each shard answers a local k-NN (with the exclusion zone
        translated into its frame); the union is re-ranked by
        ``(distance, position)`` and truncated to ``k``. Queries
        shorter than ``l`` dispatch to the pipeline's exact prefix scan.
        """
        if is_prefix_query(query, self._source.length):
            from ..query import QuerySpec, execute

            return execute(
                self,
                QuerySpec(query=query, mode="knn", k=k, exclude=exclude),
                executor=executor,
            )
        k = check_positive_int(k, name="k")
        query = prepare_values(self._source, query)
        exclude = normalize_exclude(exclude)

        def local_exclude_for(start: int, tree) -> tuple[int, int] | None:
            if exclude is None:
                return None
            lo = max(0, exclude[0] - start)
            hi = min(tree.size, exclude[1] - start)
            return (lo, hi) if lo < hi else None

        def one(args) -> SearchResult:
            start, tree = args
            return tree.knn(
                query,
                min(k, tree.size),
                exclude=local_exclude_for(start, tree),
            )

        if is_process_executor(executor):
            results = self._map(
                executor,
                call_task,
                self._shard_tasks(
                    "knn",
                    lambda i: (query, min(k, self._shards[i].size)),
                    lambda i: {
                        "exclude": local_exclude_for(
                            self._starts[i], self._shards[i]
                        )
                    },
                ),
            )
        else:
            results = self._map(
                executor, one, list(zip(self._starts, self._shards))
            )
        return merge_knn(zip(self._starts, results), k)

    def search_batch(
        self,
        queries: Any,
        epsilon: float,
        *,
        executor: concurrent.futures.Executor | None = None,
        batched: bool | None = None,
        **search_options: Any,
    ) -> BatchResult:
        """Run every query of ``queries`` at ``epsilon``.

        With ``executor`` the *queries* fan out across the pool (each
        query then walks its shards serially — the profitable split for
        workloads of many small queries, and it avoids nested-pool
        deadlock); without one the batch runs serially. When every shard
        is frozen, no executor is supplied and the index is large
        enough (:data:`BATCHED_MIN_WINDOWS`; on smaller trees the
        shared traversal's fixed setup costs more than it saves), each
        shard answers the whole workload with one batched traversal
        (:meth:`FrozenTSIndex.search_batch
        <repro.core.frozen.FrozenTSIndex.search_batch>`) — identical
        results, fewer NumPy dispatches. ``batched=False`` forces the
        per-query loop; ``batched=True`` forces the shared traversal and
        raises if it cannot run (dynamic shards, or an executor).
        Result order always matches the input order. Workloads holding
        any query shorter than ``l`` dispatch to the pipeline's
        per-query loop (mixed lengths supported).
        """
        epsilon = check_non_negative(epsilon, name="epsilon")
        queries = list(queries)
        if any(
            is_prefix_query(query, self._source.length)
            for query in queries
        ):
            if batched:
                raise InvalidParameterError(
                    "batched=True runs the fixed-length shared traversal "
                    "and cannot serve variable-length queries; drop "
                    "batched= or pass full-length queries only"
                )
            from ..query import QuerySpec, execute

            return execute(
                self,
                QuerySpec(
                    query=queries,
                    mode="batch",
                    epsilon=epsilon,
                    options=dict(search_options),
                ),
                executor=executor,
            )

        if batched is None:
            batched = (
                executor is None
                and len(queries) > 1
                and self.size >= BATCHED_MIN_WINDOWS
                and self.frozen
            )
        elif batched:
            if executor is not None:
                raise InvalidParameterError(
                    "batched=True runs each shard's whole workload in "
                    "one traversal and cannot fan out on an executor"
                )
            if not self.frozen:
                raise InvalidParameterError(
                    "batched=True requires frozen shards (build with "
                    "frozen=True, the default, or call freeze())"
                )
        if batched and queries:
            per_shard = [
                tree.search_batch(queries, epsilon, **search_options)
                for tree in self._shards
            ]
            results = [
                merge_offset_search(
                    zip(self._starts, (batch.results[i] for batch in per_shard))
                )
                for i in range(len(queries))
            ]
        elif is_process_executor(executor):
            # Query closures cannot cross a process boundary; run the
            # query loop here and fan each query's *shards* across the
            # worker processes instead (identical results — same merge,
            # same order).
            results = [
                self.search(query, epsilon, executor=executor, **search_options)
                for query in queries
            ]
        else:
            def one(query) -> SearchResult:
                return self.search(query, epsilon, **search_options)

            results = self._map(executor, one, queries)
        return batch_result(results, epsilon)

    # ------------------------------------------------------------------
    @staticmethod
    def _map(executor, fn, items: list) -> list:
        return map_with_executor(executor, fn, items)
