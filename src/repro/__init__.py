"""repro — Twin Subsequence Search in Time Series (EDBT 2021 reproduction).

Given a time series ``T``, a query sequence ``Q`` of length ``l`` and a
threshold ``ε``, *twin subsequence search* returns every subsequence of
``T`` whose **Chebyshev (L∞) distance** to ``Q`` is at most ``ε``. This
package reproduces the paper's four search methods —

* :class:`~repro.core.tsindex.TSIndex` (the paper's contribution: an
  MBTS tree, Section 5),
* :class:`~repro.indices.kvindex.KVIndex` (mean-value inverted index,
  Section 4.1),
* :class:`~repro.indices.isax.ISAXIndex` (SAX-word tree, Section 4.2),
* :class:`~repro.indices.sweepline.SweeplineSearch` (exhaustive scan,
  Section 3.2),

— plus the datasets, workloads and harness needed to regenerate every
table and figure of the evaluation (see DESIGN.md / EXPERIMENTS.md).

Quickstart
----------
>>> import numpy as np
>>> from repro import TSIndex, twin_search
>>> series = np.cumsum(np.random.default_rng(0).normal(size=5000))
>>> index = TSIndex.build(series, length=100, normalization="none")
>>> result = index.search(series[250:350], epsilon=0.4)
>>> 250 in result.positions
True

``twin_search`` is a one-call convenience that picks TS-Index for you:

>>> result = twin_search(series, series[250:350], epsilon=0.4)
>>> 250 in result.positions
True

Beyond the paper, a built TS-Index can be frozen into a read-optimized
flat form (:class:`~repro.core.frozen.FrozenTSIndex`, via
:meth:`TSIndex.freeze <repro.core.tsindex.TSIndex.freeze>`): identical
answers from structure-of-arrays storage with vectorized frontier
traversal and a batched ``search_batch``. :mod:`repro.engine` turns the
library into a query-serving engine: :class:`~repro.engine.ShardedTSIndex`
partitions a series into per-shard TS-Indexes (parallel build, frozen
shards by default, fan-out queries, results exactly equal to a
monolithic index),
:class:`~repro.engine.QueryCache` memoizes repeated queries, and
:class:`~repro.engine.QueryEngine` composes both with a named-index
registry behind a thread pool for concurrent callers:

>>> from repro import QueryEngine
>>> with QueryEngine() as serving:
...     _ = serving.build("demo", series, length=100, shards=2,
...                       normalization="none")
...     result = serving.query("demo", series[250:350], epsilon=0.4)
>>> 250 in result.positions
True

Growing series are first-class too: :mod:`repro.live` is an LSM-style
ingestion plane — :class:`~repro.live.LiveTwinIndex` appends readings
(durably, through a write-ahead log when created with
:meth:`~repro.live.LiveTwinIndex.create`), seals the mutable delta into
frozen segments, compacts them in the background, and answers
``search`` / ``knn`` / ``exists`` byte-identically to a from-scratch
index over the full series. Serve one through the engine with
:meth:`QueryEngine.add_live <repro.engine.QueryEngine.add_live>` /
:meth:`QueryEngine.append <repro.engine.QueryEngine.append>`.
"""

from __future__ import annotations

from .core import (
    MBTS,
    BatchResult,
    BuildStats,
    CollectionIndex,
    CollectionMatch,
    FrozenTSIndex,
    Normalization,
    QueryStats,
    SearchResult,
    TimeSeries,
    TSIndex,
    TSIndexParams,
    WindowSource,
    chebyshev_distance,
    euclidean_distance,
    search_batch,
)
from .core.bulkload import bulk_load, bulk_load_source
from .data import load_dataset, load_series
from .engine import (
    CacheStats,
    EngineStats,
    IndexRegistry,
    QueryCache,
    QueryEngine,
    ShardedTSIndex,
)
from .exceptions import (
    IncompatibleQueryError,
    IndexNotBuiltError,
    InvalidParameterError,
    ReproError,
    SerializationError,
    ShardTimeoutError,
    SimulatedCrashError,
    StorageError,
    UnsupportedNormalizationError,
)
from .indices import (
    ISAXIndex,
    ISAXParams,
    KVIndex,
    KVIndexParams,
    SubsequenceIndex,
    SweeplineSearch,
    available_methods,
    create_method,
    extended_methods,
)
from .live import LiveTwinIndex, WriteAheadLog
from .obs import (
    MetricsRegistry,
    QueryTrace,
    Tracer,
    configure_logging,
    install_null_handler,
    json_snapshot,
    to_json,
    to_prometheus,
)
from .query import QuerySpec
from .sweep import QueryMix, SweepSpec, compare_artifacts, run_sweep

# Library logging convention: silent unless the application configures
# handlers (repro.obs.configure_logging is the documented shortcut).
install_null_handler()

__version__ = "1.0.0"

__all__ = [
    "MBTS",
    "BatchResult",
    "BuildStats",
    "CacheStats",
    "CollectionIndex",
    "CollectionMatch",
    "EngineStats",
    "FrozenTSIndex",
    "ISAXIndex",
    "ISAXParams",
    "IncompatibleQueryError",
    "IndexNotBuiltError",
    "IndexRegistry",
    "InvalidParameterError",
    "KVIndex",
    "KVIndexParams",
    "LiveTwinIndex",
    "MetricsRegistry",
    "Normalization",
    "QueryCache",
    "QueryEngine",
    "QueryMix",
    "QuerySpec",
    "QueryStats",
    "QueryTrace",
    "ReproError",
    "SearchResult",
    "SerializationError",
    "ShardTimeoutError",
    "ShardedTSIndex",
    "SimulatedCrashError",
    "StorageError",
    "SubsequenceIndex",
    "SweepSpec",
    "SweeplineSearch",
    "TSIndex",
    "TSIndexParams",
    "TimeSeries",
    "Tracer",
    "UnsupportedNormalizationError",
    "WindowSource",
    "WriteAheadLog",
    "available_methods",
    "bulk_load",
    "bulk_load_source",
    "chebyshev_distance",
    "compare_artifacts",
    "configure_logging",
    "create_method",
    "euclidean_distance",
    "extended_methods",
    "install_null_handler",
    "json_snapshot",
    "load_dataset",
    "load_series",
    "search_batch",
    "to_json",
    "to_prometheus",
    "run_sweep",
    "twin_search",
    "__version__",
]


def twin_search(
    series,
    query,
    epsilon: float,
    *,
    normalization=Normalization.NONE,
    method: str = "tsindex",
) -> SearchResult:
    """One-call twin subsequence search.

    Builds the requested method (default: TS-Index) over all windows of
    ``series`` with the query's length and returns every twin of
    ``query`` within Chebyshev ``epsilon``. For repeated queries against
    the same series, build the index once instead.
    """
    import numpy as np

    query = np.asarray(query, dtype=float)
    engine = create_method(
        method, series, query.size, normalization=normalization
    )
    return engine.search(query, epsilon)
