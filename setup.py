"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so legacy tooling (``python setup.py --version``, editable
installs on environments without the ``wheel`` package) keeps working.
"""

from setuptools import setup

setup()
