"""Live ingestion plane: sustained append throughput + query latency.

Measures, on a synthetic monitoring stream, the numbers behind
:mod:`repro.live`:

* **ingest** — sustained append throughput (readings/s) of the
  in-memory LSM lifecycle (delta inserts + seals + inline compaction),
  and the same with the write-ahead log on (durable ingest);
* **strawman** — the rebuild-per-append baseline: rebuilding a
  monolithic TS-Index from scratch after every batch, the only way to
  keep a static index fresh (measured on a few batches, it is orders
  of magnitude off);
* **query latency under concurrent ingest** — p50/p99 of ``search``
  while a feeder thread appends at full speed, versus quiescent
  latency on the same final plane.

Correctness is asserted before timing: the live plane's answers are
byte-identical to a from-scratch TS-Index over the final series.
Results are written as JSON — ``BENCH_live.json`` by default — and CI
runs ``--smoke`` and uploads the artifact.

Run::

    python benchmarks/bench_live_ingest.py             # full: 120k readings
    python benchmarks/bench_live_ingest.py --smoke     # CI-sized
    python benchmarks/bench_live_ingest.py --readings 50000 --batch 100
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

from repro._util import available_cpu_count
from repro.bench.record import write_artifact
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.data import synthetic
from repro.live import LiveTwinIndex


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Benchmark live ingestion vs rebuild-per-append."
    )
    parser.add_argument(
        "--readings", type=int, default=120_000,
        help="total readings streamed (default: 120000)",
    )
    parser.add_argument(
        "--initial", type=int, default=5_000,
        help="warmup readings indexed before timing (default: 5000)",
    )
    parser.add_argument(
        "--batch", type=int, default=64,
        help="readings per append call (default: 64)",
    )
    parser.add_argument(
        "--length", type=int, default=100, help="window length (default: 100)"
    )
    parser.add_argument(
        "--seal-threshold", type=int, default=8_192,
        help="delta windows per sealed segment (default: 8192)",
    )
    parser.add_argument(
        "--max-segments", type=int, default=8,
        help="segment count that triggers compaction (default: 8)",
    )
    parser.add_argument(
        "--queries", type=int, default=200,
        help="queries timed per latency stage (default: 200)",
    )
    parser.add_argument(
        "--strawman-batches", type=int, default=5,
        help="append batches measured for the rebuild-per-append "
        "strawman (default: 5; it is far too slow for more)",
    )
    parser.add_argument(
        "--neighbors", type=int, default=10,
        help="epsilon = median k-th NN distance of sample queries "
        "(default: 10)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", default="BENCH_live.json",
        help="JSON results path (default: BENCH_live.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI smoke runs",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.readings = 8_000
        args.initial = 1_000
        args.seal_threshold = 1_024
        args.queries = 24
        args.strawman_batches = 2
    return args


def make_stream(n: int, seed: int) -> np.ndarray:
    """A traffic-like monitoring stream (daily cycle + noise)."""
    base = synthetic.noisy_sines(
        n, seed=seed, frequencies=(1 / 288, 1 / 2016),
        amplitudes=(40.0, 12.0), noise_std=4.0,
    )
    return np.maximum(base + 60.0, 0.0)


def pick_epsilon(live: LiveTwinIndex, queries, neighbors: int) -> float:
    kth = []
    for query in queries[:8]:
        ranked = live.knn(query, neighbors)
        if len(ranked):
            kth.append(float(ranked.distances[-1]))
    return float(np.median(kth)) if kth else 0.5


def assert_equal(a, b, label: str) -> None:
    if not (
        np.array_equal(a.positions, b.positions)
        and np.array_equal(a.distances, b.distances)
    ):
        raise AssertionError(f"{label}: live != from-scratch")


def ingest(args, series, *, directory=None) -> tuple[LiveTwinIndex, dict]:
    """Stream ``series`` through a live plane; returns it plus timings."""
    options = dict(
        length=args.length,
        seal_threshold=args.seal_threshold,
        max_segments=args.max_segments,
    )
    if directory is None:
        live = LiveTwinIndex(series[: args.initial], **options)
    else:
        live = LiveTwinIndex.create(directory, series[: args.initial], **options)
    started = time.perf_counter()
    for start in range(args.initial, series.size, args.batch):
        live.append(series[start : start + args.batch])
    live.wait_for_compaction()
    elapsed = time.perf_counter() - started
    streamed = series.size - args.initial
    row = {
        "readings": int(streamed),
        "seconds": round(elapsed, 4),
        "readings_per_second": round(streamed / elapsed, 1),
        "seals": live.seal_count,
        "compactions": live.compaction_count,
        "segments": live.segment_count,
    }
    return live, row


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    series = make_stream(args.readings, args.seed)
    params = TSIndexParams()

    results = {
        "config": {
            "readings": args.readings,
            "initial": args.initial,
            "batch": args.batch,
            "length": args.length,
            "seal_threshold": args.seal_threshold,
            "max_segments": args.max_segments,
            "queries": args.queries,
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "cpu_count": available_cpu_count(),
        },
    }

    # --- ingest throughput (in-memory, then durable) -------------------
    print(f"streaming {args.readings} readings in batches of {args.batch} ...")
    live, row = ingest(args, series)
    results["ingest"] = row
    print(
        f"  in-memory: {row['readings_per_second']:.0f} readings/s "
        f"({row['seals']} seals, {row['compactions']} compactions)"
    )
    directory = tempfile.mkdtemp(prefix="repro-bench-live-")
    try:
        durable, row = ingest(args, series, directory=directory)
        durable.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    results["ingest_durable"] = row
    print(f"  with WAL:  {row['readings_per_second']:.0f} readings/s")

    # --- correctness gate + workload -----------------------------------
    reference = TSIndex.from_source(live.source, params=params)
    positions = rng.integers(0, live.window_count, size=args.queries)
    queries = [
        np.array(live.source.window_block(int(p), int(p) + 1)[0])
        for p in positions
    ]
    epsilon = pick_epsilon(live, queries, args.neighbors)
    for query in queries[:16]:
        assert_equal(
            live.search(query, epsilon),
            reference.search(query, epsilon),
            "search",
        )
        assert_equal(live.knn(query, 5), reference.knn(query, 5), "knn")
    print(f"equality checks passed; workload epsilon={epsilon:.4f}")

    # --- strawman: rebuild a static index per append batch -------------
    strawman_series = series[: args.initial + args.strawman_batches * args.batch]
    started = time.perf_counter()
    batches = 0
    for start in range(args.initial, strawman_series.size, args.batch):
        TSIndex.build(
            strawman_series[: start + args.batch],
            args.length,
            normalization="none",
            params=params,
        )
        batches += 1
    strawman_seconds = time.perf_counter() - started
    strawman_rate = batches * args.batch / strawman_seconds
    results["strawman_rebuild_per_append"] = {
        "batches_measured": batches,
        "seconds": round(strawman_seconds, 4),
        "readings_per_second": round(strawman_rate, 2),
        "live_speedup": round(
            results["ingest"]["readings_per_second"] / strawman_rate, 1
        ),
    }
    print(
        f"strawman rebuild-per-append: {strawman_rate:.0f} readings/s "
        f"→ live is {results['strawman_rebuild_per_append']['live_speedup']}x"
    )

    # --- query latency: quiescent, then under concurrent ingest --------
    def percentiles(latencies) -> dict:
        array = np.asarray(latencies)
        return {
            "p50_ms": round(float(np.percentile(array, 50)) * 1e3, 3),
            "p99_ms": round(float(np.percentile(array, 99)) * 1e3, 3),
            "mean_ms": round(float(array.mean()) * 1e3, 3),
            "queries": int(array.size),
        }

    quiescent = []
    for query in queries:
        started = time.perf_counter()
        live.search(query, epsilon)
        quiescent.append(time.perf_counter() - started)
    results["query_quiescent"] = percentiles(quiescent)

    feeder_stop = threading.Event()

    def feeder():
        feed_rng = np.random.default_rng(args.seed + 1)
        while not feeder_stop.is_set():
            live.append(feed_rng.normal(60.0, 4.0, size=args.batch))

    thread = threading.Thread(target=feeder)
    thread.start()
    try:
        under_ingest = []
        for query in queries:
            started = time.perf_counter()
            live.search(query, epsilon)
            under_ingest.append(time.perf_counter() - started)
    finally:
        feeder_stop.set()
        thread.join()
    live.wait_for_compaction()
    results["query_under_ingest"] = percentiles(under_ingest)
    for name in ("query_quiescent", "query_under_ingest"):
        row = results[name]
        print(f"{name}: p50 {row['p50_ms']}ms  p99 {row['p99_ms']}ms")

    live.close()
    write_artifact(args.output, results, kind="live", seed=args.seed)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
