"""Engine throughput: queries/sec vs shard count, cache hit-rate, and
the unified query pipeline's overhead.

The serving-layer benches (not paper experiments):

* batch throughput of :class:`repro.engine.ShardedTSIndex` across shard
  counts, with query-level fan-out on a thread pool — the configuration
  :meth:`QueryEngine.batch` serves;
* shard-parallel single-query latency across shard counts;
* :class:`repro.engine.QueryEngine` end-to-end with a repeated workload,
  reporting the cache hit rate alongside throughput;
* **pipeline overhead** — the same workload answered by a direct plane
  call vs through ``QueryEngine`` (QuerySpec → plan → execute, cache
  off), measuring what the unified query plane costs per query.

Each bench records queries/sec (and hit rate where applicable) in
``benchmark.extra_info`` so the recorded JSON carries the serving
metrics, matching how the other suites record matches/recall.

Run standalone for the recorded pipeline-overhead artifact::

    python benchmarks/bench_engine_throughput.py                  # full scale
    python benchmarks/bench_engine_throughput.py --smoke          # CI-sized
    python benchmarks/bench_engine_throughput.py --output BENCH_engine.json

writes JSON (``BENCH_engine.json``) with engine-vs-direct latencies and
overhead percentages per serving configuration; CI runs ``--smoke`` and
uploads the artifact.
"""

import argparse
import concurrent.futures
import sys
import time

import numpy as np
import pytest

from repro.bench.experiments import DEFAULT_LENGTH
from repro.engine import QueryEngine, ShardedTSIndex

from conftest import default_epsilon, get_context, get_workload

DATASET = "insect"
NORMALIZATION = "global"

#: Shard counts swept by the throughput benches (1 == monolithic).
SHARD_COUNTS = (1, 2, 4, 8)

#: Workload repetitions for the cache bench (first pass misses, the
#: rest hit).
CACHE_ROUNDS = 4


@pytest.fixture(scope="module")
def pool():
    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as executor:
        yield executor


def _sharded(shards: int) -> ShardedTSIndex:
    context = get_context(DATASET)
    return ShardedTSIndex.build(
        np.asarray(context.series),
        DEFAULT_LENGTH,
        normalization=NORMALIZATION,
        shards=shards,
    )


@pytest.mark.benchmark(max_time=1.0, min_rounds=2, warmup=False)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_engine_batch_throughput(benchmark, pool, shards):
    """Batch queries/sec with query-level fan-out, per shard count."""
    engine = _sharded(shards)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    queries = list(workload)
    benchmark.group = "engine-batch-throughput"

    def run():
        return engine.search_batch(queries, epsilon, executor=pool)

    batch = benchmark(run)
    benchmark.extra_info["shards"] = shards
    if benchmark.stats is not None:
        # Absent when run with --benchmark-disable (the CI smoke mode).
        seconds = benchmark.stats.stats.mean
        benchmark.extra_info["queries_per_sec"] = round(
            len(queries) / seconds, 1
        )
    benchmark.extra_info["matches"] = batch.total_matches
    assert len(batch) == len(queries)


@pytest.mark.benchmark(max_time=1.0, min_rounds=2, warmup=False)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_engine_single_query_shard_fanout(benchmark, pool, shards):
    """Single-query latency with shard-level fan-out, per shard count."""
    engine = _sharded(shards)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    query = workload.queries[0]
    benchmark.group = "engine-single-query"

    result = benchmark(lambda: engine.search(query, epsilon, executor=pool))
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["matches"] = len(result)


@pytest.mark.benchmark(max_time=2.0, min_rounds=1, warmup=False)
@pytest.mark.parametrize("use_cache", [True, False], ids=["cached", "uncached"])
def test_engine_cache_hit_rate(benchmark, use_cache):
    """Repeated workload through QueryEngine; records the hit rate."""
    context = get_context(DATASET)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    queries = list(workload)
    benchmark.group = "engine-cache"

    def run():
        with QueryEngine(cache_capacity=4 * len(queries)) as engine:
            engine.build(
                DATASET,
                np.asarray(context.series),
                DEFAULT_LENGTH,
                normalization=NORMALIZATION,
                shards=4,
            )
            total = 0
            for _ in range(CACHE_ROUNDS):
                total += engine.batch(
                    DATASET, queries, epsilon, use_cache=use_cache
                ).total_matches
            return engine.stats()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    served = CACHE_ROUNDS * len(queries)
    benchmark.extra_info["queries_served"] = served
    benchmark.extra_info["cache_hit_rate"] = round(stats.cache.hit_rate, 3)
    if use_cache:
        # Every repeat after the first pass must hit.
        assert stats.cache.hits >= (CACHE_ROUNDS - 1) * len(queries)
    else:
        assert stats.cache.lookups == 0


@pytest.mark.benchmark(max_time=1.0, min_rounds=2, warmup=False)
@pytest.mark.parametrize("path", ["direct", "engine"])
def test_pipeline_overhead(benchmark, pool, path):
    """The unified pipeline's cost: direct plane calls vs QueryEngine
    (QuerySpec → plan → execute, cache off) on the same workload.

    Both paths hand the plane an 8-worker executor, so the measured
    difference is the pipeline itself, not the fan-out configuration.
    """
    context = get_context(DATASET)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    queries = list(workload)
    benchmark.group = "engine-pipeline-overhead"

    engine = QueryEngine(max_workers=8)
    plane = engine.build(
        DATASET, np.asarray(context.series), DEFAULT_LENGTH,
        normalization=NORMALIZATION, shards=4,
    )
    try:
        if path == "direct":
            def run():
                return sum(
                    len(plane.search(query, epsilon, executor=pool))
                    for query in queries
                )
        else:
            def run():
                return sum(
                    len(engine.query(DATASET, query, epsilon,
                                     use_cache=False))
                    for query in queries
                )

        total = benchmark(run)
        benchmark.extra_info["path"] = path
        benchmark.extra_info["matches"] = total
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Standalone pipeline-overhead artifact (BENCH_engine.json)
# ----------------------------------------------------------------------
def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Measure QueryEngine pipeline overhead vs direct "
        "plane calls and record BENCH_engine.json."
    )
    parser.add_argument(
        "--windows", type=int, default=100_000,
        help="indexed window count (default: 100000)",
    )
    parser.add_argument(
        "--length", type=int, default=100, help="window length (default: 100)"
    )
    parser.add_argument(
        "--queries", type=int, default=64, help="workload size (default: 64)"
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the sharded plane (default: 4)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repetitions; best is kept (default: 5)",
    )
    parser.add_argument(
        "--neighbors", type=int, default=10,
        help="epsilon = median k-th nearest-neighbour distance of the "
        "queries (default: 10)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", default="BENCH_engine.json",
        help="JSON results path (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI smoke runs (overrides --windows/--queries)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.windows = 4_000
        args.queries = 12
        args.shards = 2
        args.repeats = 2
    return args


def _best_of(repeats: int, run) -> float:
    """Best wall-clock seconds of ``repeats`` runs of ``run()``."""
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _no_setup() -> None:
    """No per-round state swap: both sides run as-is."""


def main(argv=None) -> int:
    from repro._util import available_cpu_count
    from repro.bench.record import write_artifact
    from repro.bench.timing import paired_best
    from repro.core.windows import WindowSource
    from repro.data import synthetic
    from repro.indices import create_method
    from repro.query.capabilities import CAP_EXECUTOR, capabilities_of

    args = parse_args(argv)
    workers = min(32, available_cpu_count() + 4)
    rng = np.random.default_rng(args.seed)
    series = synthetic.insect_like(
        args.windows + args.length - 1, seed=args.seed
    )
    source = WindowSource(series, args.length, "global")

    print(f"building planes over {source.count} windows ...")
    sharded = ShardedTSIndex.from_source(source, shards=args.shards)
    frozen = create_method(
        "frozen", series, args.length, normalization="global"
    )
    sweepline = create_method(
        "sweepline", series, args.length, normalization="global"
    )

    positions = rng.integers(0, source.count, size=args.queries)
    queries = [
        np.array(source.window_block(int(p), int(p) + 1)[0])
        for p in positions
    ]
    kth = []
    for query, position in zip(queries[:8], positions[:8]):
        zone = (max(0, int(position) - args.length),
                int(position) + args.length)
        ranked = frozen.knn(query, args.neighbors, exclude=zone)
        if len(ranked):
            kth.append(float(ranked.distances[-1]))
    epsilon = float(np.median(kth)) if kth else 0.5
    print(f"workload: {len(queries)} queries, epsilon={epsilon:.4f}")

    # The engine and the direct baseline get identically sized pools,
    # so the measured difference is the pipeline, not the fan-out.
    engine = QueryEngine(
        cache_capacity=4 * len(queries), max_workers=workers
    )
    pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
    engine.add("sharded", sharded)
    engine.add("frozen", frozen)
    engine.add("sweepline", sweepline)

    results = {
        "config": {
            "windows": source.count,
            "length": args.length,
            "queries": len(queries),
            "shards": args.shards,
            "epsilon": epsilon,
            "repeats": args.repeats,
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "cpu_count": available_cpu_count(),
        },
    }

    def record(name, direct_seconds, engine_seconds, count):
        overhead = 100.0 * (engine_seconds - direct_seconds) / direct_seconds
        row = {
            "direct_ms_per_query": round(1e3 * direct_seconds / count, 4),
            "engine_ms_per_query": round(1e3 * engine_seconds / count, 4),
            "overhead_pct": round(overhead, 2),
        }
        results[name] = row
        print(
            f"{name}: direct {row['direct_ms_per_query']}ms/q, engine "
            f"{row['engine_ms_per_query']}ms/q "
            f"(overhead {row['overhead_pct']:+.2f}%)"
        )

    def loop_pair(name, plane, subset):
        """Direct plane loop vs engine loop (cache off) on ``subset``.

        Planes that accept ``executor=`` fan-out get the same-sized
        pool on the direct path that the engine hands them internally.
        """
        options = (
            {"executor": pool}
            if CAP_EXECUTOR in capabilities_of(plane)
            else {}
        )
        served = [
            engine.query(name, query, epsilon, use_cache=False)
            for query in subset
        ]
        direct = [plane.search(query, epsilon, **options) for query in subset]
        for one, other in zip(served, direct):
            if not (
                np.array_equal(one.positions, other.positions)
                and np.array_equal(one.distances, other.distances)
            ):
                raise AssertionError(f"{name}: engine != direct")
        direct_seconds, engine_seconds = paired_best(
            args.repeats,
            _no_setup,
            lambda: [
                plane.search(query, epsilon, **options) for query in subset
            ],
            _no_setup,
            lambda: [
                engine.query(name, query, epsilon, use_cache=False)
                for query in subset
            ],
        )
        record(f"single_{name}", direct_seconds, engine_seconds, len(subset))

    # --- single-query overhead per serving plane ----------------------
    loop_pair("sharded", sharded, queries)
    loop_pair("frozen", frozen, queries)
    # The newly-servable paper baseline: a few queries suffice (each is
    # a full scan, so pipeline cost is negligible by construction).
    loop_pair("sweepline", sweepline, queries[: max(4, len(queries) // 4)])

    # --- whole-workload overhead (engine.batch vs plane batch) --------
    # ``batched=False`` pins the direct call to the per-query fan-out
    # shape engine.batch serves (its per-query results are what the
    # cache keys), so the row measures the pipeline, not the frozen
    # shared-traversal kernel (a different serving mode).
    direct_seconds, engine_seconds = paired_best(
        args.repeats,
        _no_setup,
        lambda: sharded.search_batch(
            queries, epsilon, executor=pool, batched=False
        ),
        _no_setup,
        lambda: engine.batch("sharded", queries, epsilon, use_cache=False),
    )
    record("batch_sharded", direct_seconds, engine_seconds, len(queries))

    # --- cached serving, for context ----------------------------------
    engine.batch("sharded", queries, epsilon)  # warm
    cached_seconds = _best_of(args.repeats, lambda: engine.batch(
        "sharded", queries, epsilon
    ))
    results["cached"] = {
        "engine_ms_per_query": round(
            1e3 * cached_seconds / len(queries), 4
        ),
        "hit_rate": round(engine.stats().cache.hit_rate, 3),
    }
    print(
        f"cached: {results['cached']['engine_ms_per_query']}ms/q "
        f"(hit rate {results['cached']['hit_rate']:.0%})"
    )

    worst = max(
        row["overhead_pct"]
        for key, row in results.items()
        if isinstance(row, dict) and "overhead_pct" in row
    )
    results["max_overhead_pct"] = worst
    print(f"max pipeline overhead: {worst:+.2f}%")

    pool.shutdown()
    engine.close()
    write_artifact(args.output, results, kind="engine", seed=args.seed)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
