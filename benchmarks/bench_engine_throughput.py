"""Engine throughput: queries/sec vs shard count, and cache hit-rate.

The serving-layer benches (not paper experiments):

* batch throughput of :class:`repro.engine.ShardedTSIndex` across shard
  counts, with query-level fan-out on a thread pool — the configuration
  :meth:`QueryEngine.batch` serves;
* shard-parallel single-query latency across shard counts;
* :class:`repro.engine.QueryEngine` end-to-end with a repeated workload,
  reporting the cache hit rate alongside throughput.

Each bench records queries/sec (and hit rate where applicable) in
``benchmark.extra_info`` so the recorded JSON carries the serving
metrics, matching how the other suites record matches/recall.
"""

import concurrent.futures

import numpy as np
import pytest

from repro.bench.experiments import DEFAULT_LENGTH
from repro.engine import QueryEngine, ShardedTSIndex

from conftest import default_epsilon, get_context, get_workload

DATASET = "insect"
NORMALIZATION = "global"

#: Shard counts swept by the throughput benches (1 == monolithic).
SHARD_COUNTS = (1, 2, 4, 8)

#: Workload repetitions for the cache bench (first pass misses, the
#: rest hit).
CACHE_ROUNDS = 4


@pytest.fixture(scope="module")
def pool():
    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as executor:
        yield executor


def _sharded(shards: int) -> ShardedTSIndex:
    context = get_context(DATASET)
    return ShardedTSIndex.build(
        np.asarray(context.series),
        DEFAULT_LENGTH,
        normalization=NORMALIZATION,
        shards=shards,
    )


@pytest.mark.benchmark(max_time=1.0, min_rounds=2, warmup=False)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_engine_batch_throughput(benchmark, pool, shards):
    """Batch queries/sec with query-level fan-out, per shard count."""
    engine = _sharded(shards)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    queries = list(workload)
    benchmark.group = "engine-batch-throughput"

    def run():
        return engine.search_batch(queries, epsilon, executor=pool)

    batch = benchmark(run)
    benchmark.extra_info["shards"] = shards
    if benchmark.stats is not None:
        # Absent when run with --benchmark-disable (the CI smoke mode).
        seconds = benchmark.stats.stats.mean
        benchmark.extra_info["queries_per_sec"] = round(
            len(queries) / seconds, 1
        )
    benchmark.extra_info["matches"] = batch.total_matches
    assert len(batch) == len(queries)


@pytest.mark.benchmark(max_time=1.0, min_rounds=2, warmup=False)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_engine_single_query_shard_fanout(benchmark, pool, shards):
    """Single-query latency with shard-level fan-out, per shard count."""
    engine = _sharded(shards)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    query = workload.queries[0]
    benchmark.group = "engine-single-query"

    result = benchmark(lambda: engine.search(query, epsilon, executor=pool))
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["matches"] = len(result)


@pytest.mark.benchmark(max_time=2.0, min_rounds=1, warmup=False)
@pytest.mark.parametrize("use_cache", [True, False], ids=["cached", "uncached"])
def test_engine_cache_hit_rate(benchmark, use_cache):
    """Repeated workload through QueryEngine; records the hit rate."""
    context = get_context(DATASET)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    queries = list(workload)
    benchmark.group = "engine-cache"

    def run():
        with QueryEngine(cache_capacity=4 * len(queries)) as engine:
            engine.build(
                DATASET,
                np.asarray(context.series),
                DEFAULT_LENGTH,
                normalization=NORMALIZATION,
                shards=4,
            )
            total = 0
            for _ in range(CACHE_ROUNDS):
                total += engine.batch(
                    DATASET, queries, epsilon, use_cache=use_cache
                ).total_matches
            return engine.stats()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    served = CACHE_ROUNDS * len(queries)
    benchmark.extra_info["queries_served"] = served
    benchmark.extra_info["cache_hit_rate"] = round(stats.cache.hit_rate, 3)
    if use_cache:
        # Every repeat after the first pass must hit.
        assert stats.cache.hits >= (CACHE_ROUNDS - 1) * len(queries)
    else:
        assert stats.cache.lookups == 0
