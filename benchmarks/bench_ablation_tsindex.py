"""Ablations on TS-Index design choices (DESIGN.md §5).

* node capacity (μc, Mc) — the paper fixes (10, 30); we sweep it;
* split assignment metric — R-tree area enlargement (default) vs the
  Chebyshev-style max enlargement;
* bulk loading vs sequential insertion — build time and query time for
  each ordering.
"""

import pytest

from repro.bench.experiments import DEFAULT_LENGTH
from repro.core.bulkload import BULK_ORDERINGS, bulk_load_source
from repro.core.tsindex import TSIndex, TSIndexParams

from conftest import default_epsilon, get_context, get_workload, run_workload

DATASET = "insect"
NORMALIZATION = "global"

CAPACITIES = ((5, 15), (10, 30), (20, 60), (50, 150))
_INDEX_CACHE: dict = {}


def _source():
    return get_context(DATASET).source(DEFAULT_LENGTH, NORMALIZATION)


def _capacity_index(min_children: int, max_children: int, metric: str = "area"):
    key = (min_children, max_children, metric)
    if key not in _INDEX_CACHE:
        _INDEX_CACHE[key] = TSIndex.from_source(
            _source(),
            params=TSIndexParams(
                min_children=min_children,
                max_children=max_children,
                split_metric=metric,
            ),
        )
    return _INDEX_CACHE[key]


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize(
    "capacity", CAPACITIES, ids=[f"mc{a}-Mc{b}" for a, b in CAPACITIES]
)
def test_ablation_node_capacity_query(benchmark, capacity):
    """Query time across node capacities (paper default in the middle)."""
    index = _capacity_index(*capacity)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    benchmark.group = "ablation-capacity"
    matches = benchmark(run_workload, index, workload, epsilon)
    benchmark.extra_info["height"] = index.height
    benchmark.extra_info["nodes"] = index.node_count
    benchmark.extra_info["matches"] = matches


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("metric", ["area", "max"])
def test_ablation_split_metric_query(benchmark, metric):
    """Split assignment metric: total area vs max enlargement."""
    index = _capacity_index(10, 30, metric)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    benchmark.group = "ablation-split-metric"
    matches = benchmark(run_workload, index, workload, epsilon)
    benchmark.extra_info["nodes"] = index.node_count
    benchmark.extra_info["matches"] = matches


@pytest.mark.benchmark(min_rounds=1, max_time=1.0, warmup=False)
@pytest.mark.parametrize("strategy", ("insert",) + BULK_ORDERINGS)
def test_ablation_build_strategy_time(benchmark, strategy):
    """Build time: sequential insertion vs bulk-load orderings."""
    source = _source()
    benchmark.group = "ablation-build-strategy"
    if strategy == "insert":
        built = benchmark.pedantic(
            TSIndex.from_source, args=(source,), rounds=1, iterations=1
        )
    else:
        built = benchmark.pedantic(
            bulk_load_source,
            args=(source,),
            kwargs={"ordering": strategy},
            rounds=1,
            iterations=1,
        )
    benchmark.extra_info["nodes"] = built.node_count
    benchmark.extra_info["height"] = built.height
    _INDEX_CACHE[("strategy", strategy)] = built


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("strategy", ("insert",) + BULK_ORDERINGS)
def test_ablation_build_strategy_query(benchmark, strategy):
    """Query time on the trees built by each strategy."""
    index = _INDEX_CACHE.get(("strategy", strategy))
    if index is None:
        source = _source()
        if strategy == "insert":
            index = TSIndex.from_source(source)
        else:
            index = bulk_load_source(source, ordering=strategy)
        _INDEX_CACHE[("strategy", strategy)] = index
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    benchmark.group = "ablation-build-strategy-query"
    matches = benchmark(run_workload, index, workload, epsilon)
    benchmark.extra_info["matches"] = matches
