"""Figure 5 — query time vs subsequence length ``l`` (Table 2 grid).

Default ε per dataset (Table 1 bold); the paper's claim is that longer
subsequences *help* TS-Index (earlier subtree pruning) while mildly
hurting every other method.
"""

import pytest

from repro.bench.experiments import ALL_METHODS, TABLE2_LENGTHS

from conftest import default_epsilon, get_method, get_workload, run_workload

DATASETS = ("insect", "eeg")
NORMALIZATION = "global"


def _cases():
    cases = []
    for dataset in DATASETS:
        for length in TABLE2_LENGTHS:
            for method in ALL_METHODS:
                cases.append(
                    pytest.param(
                        dataset,
                        method,
                        length,
                        id=f"{dataset}-{method}-l{length}",
                    )
                )
    return cases


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("dataset,method,length", _cases())
def test_fig5_query_time(benchmark, dataset, method, length):
    engine = get_method(dataset, method, length, NORMALIZATION)
    workload = get_workload(dataset, length, NORMALIZATION)
    epsilon = default_epsilon(dataset, NORMALIZATION)
    benchmark.group = f"fig5-{dataset}-l{length}"
    matches = benchmark(run_workload, engine, workload, epsilon)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["epsilon"] = epsilon
