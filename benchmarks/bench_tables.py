"""Tables 1 and 2 — parameter grids, plus measured workload selectivity.

The paper's tables are static parameter declarations; these benches
regenerate them (asserting the registered grids) and additionally time
the ground-truth twin count at every ε of Table 1, recording measured
selectivity in ``extra_info`` — the context every figure depends on.
"""

import pytest

from repro.bench.experiments import (
    DEFAULT_LENGTH,
    DEFAULT_SEGMENTS,
    TABLE2_LENGTHS,
    TABLE2_SEGMENTS,
    table1_rows,
    table2_rows,
)

from conftest import epsilon_grid, get_method, get_workload, run_workload

DATASETS = ("insect", "eeg")


@pytest.mark.benchmark(group="table1", max_time=0.5, min_rounds=2)
@pytest.mark.parametrize("dataset", DATASETS)
def test_table1_selectivity(benchmark, dataset):
    """Twin counts over the Table 1 ε grid (sweepline ground truth)."""
    rows = table1_rows()
    assert [row["dataset"] for row in rows] == ["insect", "eeg"]
    sweepline = get_method(dataset, "sweepline", DEFAULT_LENGTH, "global")
    workload = get_workload(dataset, DEFAULT_LENGTH, "global")
    grid = epsilon_grid(dataset, "global")

    counts = {
        str(epsilon): run_workload(sweepline, workload, epsilon)
        for epsilon in grid
    }
    benchmark(run_workload, sweepline, workload, grid[1])
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["windows"] = sweepline.source.count
    benchmark.extra_info["matches_per_epsilon"] = counts


@pytest.mark.benchmark(group="table2", max_time=0.5, min_rounds=2)
def test_table2_grids(benchmark):
    """Table 2's parameter grids as registered in the harness."""
    rows = table2_rows()
    assert TABLE2_SEGMENTS == (5, 10, 20, 25, 50)
    assert TABLE2_LENGTHS == (50, 100, 150, 200, 250)
    assert DEFAULT_SEGMENTS == 10
    assert DEFAULT_LENGTH == 100
    benchmark(table2_rows)
    benchmark.extra_info["rows"] = rows
