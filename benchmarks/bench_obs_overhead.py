"""Observability overhead: the instrumented serving stack vs the same
stack with metrics and tracing disabled.

The ``repro.obs`` acceptance gate: full instrumentation (per-mode
counters + latency histograms, per-shard fan-out histograms, planner
counters, every query traced) must cost **at most 2%** on the hot
single-query path. Both sides of every comparison run interleaved
(A B A B ...) with best-of timing, the same plane, the same pool size
and the cache off, so the measured difference is the instrumentation
alone. The default metrics registry is swapped (real registry vs
:data:`~repro.obs.NULL_REGISTRY`) *outside* the timed regions — the
hot path sees only the per-call handle-cache identity check.

Sections recorded in ``BENCH_obs.json``:

* ``single_query`` — ``QueryEngine.query`` (cache off) instrumented vs
  disabled;
* ``batch`` — ``QueryEngine.batch`` (cache off) instrumented vs
  disabled;
* ``live_append`` — durable ``LiveTwinIndex.append`` (WAL + ingest
  counters) instrumented vs disabled;
* ``signals`` — proof the instrumented run exposed the issue's minimum
  catalog (QPS, per-mode p50/p99, cache hit rate, ingest lag, WAL
  fsync latency, seal/compaction counts).

Run standalone::

    python benchmarks/bench_obs_overhead.py            # full scale
    python benchmarks/bench_obs_overhead.py --smoke    # CI-sized
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

import numpy as np

#: The acceptance gate on the hot single-query path, percent.
OVERHEAD_GATE_PCT = 2.0


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Measure repro.obs instrumentation overhead and "
        "record BENCH_obs.json."
    )
    parser.add_argument(
        "--windows", type=int, default=100_000,
        help="indexed window count (default: 100000)",
    )
    parser.add_argument(
        "--length", type=int, default=100, help="window length (default: 100)"
    )
    parser.add_argument(
        "--queries", type=int, default=64, help="workload size (default: 64)"
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the sharded plane (default: 4)",
    )
    parser.add_argument(
        "--repeats", type=int, default=7,
        help="interleaved timing repetitions; best is kept (default: 7)",
    )
    parser.add_argument(
        "--append-batches", type=int, default=200,
        help="live append batches per timed run (default: 200)",
    )
    parser.add_argument(
        "--neighbors", type=int, default=10,
        help="epsilon = median k-th nearest-neighbour distance of the "
        "queries (default: 10)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", default="BENCH_obs.json",
        help="JSON results path (default: BENCH_obs.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI smoke runs (overrides --windows/--queries)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.windows = 4_000
        args.queries = 12
        args.shards = 2
        args.repeats = 3
        args.append_batches = 40
    return args


def main(argv=None) -> int:
    from repro._util import available_cpu_count
    from repro.bench.record import write_artifact
    from repro.bench.timing import paired_best
    from repro.core.windows import WindowSource
    from repro.data import synthetic
    from repro.engine import QueryEngine, ShardedTSIndex
    from repro.live import LiveTwinIndex
    from repro.obs import (
        NULL_REGISTRY,
        MetricsRegistry,
        set_default_registry,
        to_prometheus,
    )

    args = parse_args(argv)
    workers = min(32, available_cpu_count() + 4)
    rng = np.random.default_rng(args.seed)
    series = synthetic.insect_like(
        args.windows + args.length - 1, seed=args.seed
    )
    source = WindowSource(series, args.length, "global")

    print(f"building plane over {source.count} windows ...")
    sharded = ShardedTSIndex.from_source(source, shards=args.shards)

    positions = rng.integers(0, source.count, size=args.queries)
    queries = [
        np.array(source.window_block(int(p), int(p) + 1)[0])
        for p in positions
    ]
    kth = []
    for query, position in zip(queries[:8], positions[:8]):
        zone = (max(0, int(position) - args.length),
                int(position) + args.length)
        ranked = sharded.knn(query, args.neighbors, exclude=zone)
        if len(ranked):
            kth.append(float(ranked.distances[-1]))
    epsilon = float(np.median(kth)) if kth else 0.5
    print(f"workload: {len(queries)} queries, epsilon={epsilon:.4f}")

    # Two engines over the SAME plane: one fully instrumented (its own
    # registry + every query traced), one with metrics and tracing off.
    registry = MetricsRegistry("repro")
    engine_on = QueryEngine(
        metrics=registry, trace_sample=1.0, max_workers=workers
    )
    engine_off = QueryEngine(
        metrics=False, trace_sample=0.0, max_workers=workers
    )
    engine_on.add("plane", sharded)
    engine_off.add("plane", sharded)

    def enable():
        set_default_registry(registry)

    def disable():
        set_default_registry(NULL_REGISTRY)

    results = {
        "config": {
            "windows": source.count,
            "length": args.length,
            "queries": len(queries),
            "shards": args.shards,
            "epsilon": epsilon,
            "repeats": args.repeats,
            "append_batches": args.append_batches,
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "cpu_count": available_cpu_count(),
            "overhead_gate_pct": OVERHEAD_GATE_PCT,
        },
    }

    def record(name, disabled_seconds, enabled_seconds, count, unit):
        overhead = (
            100.0 * (enabled_seconds - disabled_seconds) / disabled_seconds
        )
        row = {
            f"disabled_ms_per_{unit}": round(
                1e3 * disabled_seconds / count, 4
            ),
            f"enabled_ms_per_{unit}": round(
                1e3 * enabled_seconds / count, 4
            ),
            "overhead_pct": round(overhead, 2),
        }
        results[name] = row
        print(
            f"{name}: disabled {row[f'disabled_ms_per_{unit}']}ms/{unit}, "
            f"enabled {row[f'enabled_ms_per_{unit}']}ms/{unit} "
            f"(overhead {row['overhead_pct']:+.2f}%)"
        )

    # --- hot single-query path (the gated section) --------------------
    disabled_s, enabled_s = paired_best(
        args.repeats,
        disable,
        lambda: [
            engine_off.query("plane", query, epsilon, use_cache=False)
            for query in queries
        ],
        enable,
        lambda: [
            engine_on.query("plane", query, epsilon, use_cache=False)
            for query in queries
        ],
    )
    record("single_query", disabled_s, enabled_s, len(queries), "query")

    # --- batch path ---------------------------------------------------
    disabled_s, enabled_s = paired_best(
        args.repeats,
        disable,
        lambda: engine_off.batch("plane", queries, epsilon, use_cache=False),
        enable,
        lambda: engine_on.batch("plane", queries, epsilon, use_cache=False),
    )
    record("batch", disabled_s, enabled_s, len(queries), "query")

    # --- live ingest path (durable: WAL append + counters) ------------
    chunk = max(args.length, 64)
    feed = synthetic.insect_like(
        args.append_batches * chunk, seed=args.seed + 1
    )
    workdir = tempfile.mkdtemp(prefix="bench_obs_")

    def timed_append(tag, setup):
        path = os.path.join(workdir, tag)
        live = LiveTwinIndex.create(
            path, None, length=args.length, normalization="none",
            background_compaction=False,
        )
        try:
            def run():
                for i in range(args.append_batches):
                    live.append(feed[i * chunk : (i + 1) * chunk])
            setup()
            started = time.perf_counter()
            run()
            return time.perf_counter() - started
        finally:
            live.close()
            shutil.rmtree(path, ignore_errors=True)

    # Appends mutate state, so each side gets a fresh directory per
    # repeat and the two sides alternate (fresh-plane best-of, not a
    # shared-plane loop).
    best_off = best_on = np.inf
    for round_i in range(args.repeats):
        best_off = min(
            best_off, timed_append(f"off-{round_i}", disable)
        )
        best_on = min(best_on, timed_append(f"on-{round_i}", enable))
    record("live_append", best_off, best_on, args.append_batches, "append")
    shutil.rmtree(workdir, ignore_errors=True)

    # --- prove the instrumented run exposed the required signals ------
    enable()
    # Populate one fsync-mode WAL + cached query so every gated signal
    # has at least one observation in the exported registry.
    fsync_dir = tempfile.mkdtemp(prefix="bench_obs_fsync_")
    with LiveTwinIndex.create(
        os.path.join(fsync_dir, "live"), None, length=args.length,
        normalization="none", fsync=True,
    ) as live:
        live.append(feed[: 2 * chunk])
    shutil.rmtree(fsync_dir, ignore_errors=True)
    engine_on.query("plane", queries[0], epsilon)
    engine_on.query("plane", queries[0], epsilon)  # cache hit

    exposition = to_prometheus(registry)
    latency = registry.get("repro_engine_query_seconds")
    search = latency.labels(mode="search")
    results["signals"] = {
        "qps": registry.get("repro_engine_qps").value,
        "search_p50_ms": round(1e3 * search.quantile(0.50), 4),
        "search_p99_ms": round(1e3 * search.quantile(0.99), 4),
        "cache_hit_rate": registry.get(
            "repro_engine_cache_hit_rate"
        ).value,
        "ingest_lag_readings": registry.get(
            "repro_live_ingest_lag_readings"
        ).value,
        "wal_fsync_observations": registry.get(
            "repro_live_wal_fsync_seconds"
        ).snapshot()[2],
        "seals_total": registry.get("repro_live_seals_total").value,
        "compactions_total": registry.get(
            "repro_live_compactions_total"
        ).value,
        "exposition_bytes": len(exposition),
        "traces_retained": len(engine_on.traces()),
    }
    missing = [
        name
        for name in (
            "repro_engine_qps",
            "repro_engine_query_seconds_bucket",
            "repro_engine_cache_hit_rate",
            "repro_live_ingest_lag_readings",
            "repro_live_wal_fsync_seconds_bucket",
            "repro_live_seals_total",
            "repro_live_compactions_total",
        )
        if name not in exposition
    ]
    if missing:
        raise AssertionError(f"exposition missing signals: {missing}")
    assert results["signals"]["wal_fsync_observations"] > 0

    gated = results["single_query"]["overhead_pct"]
    results["gate"] = {
        "section": "single_query",
        "overhead_pct": gated,
        "limit_pct": OVERHEAD_GATE_PCT,
        "passed": bool(gated <= OVERHEAD_GATE_PCT),
    }
    print(
        f"gate: single-query overhead {gated:+.2f}% "
        f"(limit {OVERHEAD_GATE_PCT}%) -> "
        f"{'PASS' if results['gate']['passed'] else 'FAIL'}"
    )

    engine_on.close()
    engine_off.close()
    set_default_registry(MetricsRegistry("repro"))
    write_artifact(args.output, results, kind="obs", seed=args.seed)
    print(f"wrote {args.output}")
    # Smoke runs are too noisy to gate on (tiny queries amplify jitter);
    # the committed full-scale artifact is the acceptance record.
    if not args.smoke and not results["gate"]["passed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
