"""Extension bench: k-NN twin search vs an exact full profile scan.

Not a paper experiment — it quantifies the best-first traversal's win
over computing the full Chebyshev distance profile, the natural
baseline for nearest-neighbour queries.
"""

import numpy as np
import pytest

from repro.bench.experiments import DEFAULT_LENGTH
from repro.euclidean.mass import chebyshev_distance_profile

from conftest import get_method, get_workload

DATASET = "insect"
NORMALIZATION = "global"
K_VALUES = (1, 10, 100)


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("k", K_VALUES)
def test_knn_best_first(benchmark, k):
    index = get_method(DATASET, "tsindex", DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    benchmark.group = f"knn-k{k}"

    def run():
        total = 0.0
        for query in workload.queries[:3]:
            total += float(index.knn(query, k).distances[-1])
        return total

    benchmark(run)


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("k", K_VALUES)
def test_knn_profile_baseline(benchmark, k):
    index = get_method(DATASET, "tsindex", DEFAULT_LENGTH, NORMALIZATION)
    source = index.source
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    benchmark.group = f"knn-k{k}"

    def run():
        total = 0.0
        for query in workload.queries[:3]:
            profile = chebyshev_distance_profile(source, query)
            total += float(np.partition(profile, k - 1)[k - 1])
        return total

    benchmark(run)


@pytest.mark.parametrize("k", K_VALUES)
def test_knn_agrees_with_baseline(k):
    index = get_method(DATASET, "tsindex", DEFAULT_LENGTH, NORMALIZATION)
    source = index.source
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    for query in workload.queries[:2]:
        result = index.knn(query, k)
        profile = chebyshev_distance_profile(source, query)
        assert np.allclose(
            np.sort(result.distances), np.sort(profile)[:k], atol=1e-12
        )
