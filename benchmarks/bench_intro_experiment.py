"""The introduction's experiment — Chebyshev twins vs the equivalent
Euclidean threshold query.

The paper reports 1,034 twins vs 127,887 Euclidean results on EEG (a
~124× excess) and zero false negatives at radius ε·sqrt(l). The bench
times both profile computations and records the counts; the excess
factor and the zero-miss property are asserted.
"""

import pytest

from repro.bench.experiments import DEFAULT_LENGTH
from repro.euclidean.mass import (
    chebyshev_distance_profile,
    euclidean_distance_profile,
    twin_vs_euclidean_comparison,
)

from conftest import default_epsilon, get_context, get_workload

DATASETS = ("insect", "eeg")
NORMALIZATION = "global"


@pytest.mark.benchmark(group="intro-profiles", max_time=0.6, min_rounds=2)
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("metric", ["chebyshev", "euclidean"])
def test_intro_profile_time(benchmark, dataset, metric):
    """Distance-profile cost: O(n·l) exact Chebyshev vs O(n log n) FFT."""
    source = get_context(dataset).source(DEFAULT_LENGTH, NORMALIZATION)
    query = get_workload(dataset, DEFAULT_LENGTH, NORMALIZATION).queries[0]
    profiler = (
        chebyshev_distance_profile if metric == "chebyshev"
        else euclidean_distance_profile
    )
    benchmark.group = f"intro-profile-{dataset}"
    benchmark(profiler, source, query)


@pytest.mark.benchmark(group="intro-counts", max_time=1.0, min_rounds=1)
@pytest.mark.parametrize("dataset", DATASETS)
def test_intro_result_counts(benchmark, dataset):
    """Twin count vs Euclidean count at the equivalent radius."""
    source = get_context(dataset).source(DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(dataset, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(dataset, NORMALIZATION)

    def compare():
        twin_total = 0
        euclid_total = 0
        for query in workload.queries[:3]:
            report = twin_vs_euclidean_comparison(source, query, epsilon)
            assert report.missed_twins == 0  # Section 3.1 guarantee
            twin_total += report.twin_count
            euclid_total += report.euclidean_count
        return twin_total, euclid_total

    twins, euclid = benchmark(compare)
    assert euclid > twins  # orders of magnitude in the paper
    benchmark.extra_info["twin_results"] = twins
    benchmark.extra_info["euclidean_results"] = euclid
    benchmark.extra_info["excess_factor"] = round(euclid / max(twins, 1), 1)
