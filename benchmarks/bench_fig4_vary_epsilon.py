"""Figure 4 — query time vs ε, globally z-normalized series.

One benchmark per (dataset, method, ε) over Table 1's ε grid. The
figure's series are the per-group means; the paper's qualitative claims
(TS-Index fastest, KV-Index worst of the indices, sweepline flat) are
visible in the ``--benchmark-group-by=group`` output and recorded in
EXPERIMENTS.md.
"""

import pytest

from repro.bench.experiments import ALL_METHODS, DEFAULT_LENGTH

from conftest import epsilon_grid, get_method, get_workload, run_workload

DATASETS = ("insect", "eeg")
NORMALIZATION = "global"


def _cases():
    cases = []
    for dataset in DATASETS:
        for epsilon in epsilon_grid(dataset, NORMALIZATION):
            for method in ALL_METHODS:
                cases.append(
                    pytest.param(
                        dataset,
                        method,
                        epsilon,
                        id=f"{dataset}-{method}-eps{epsilon:g}",
                    )
                )
    return cases


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("dataset,method,epsilon", _cases())
def test_fig4_query_time(benchmark, dataset, method, epsilon):
    engine = get_method(dataset, method, DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(dataset, DEFAULT_LENGTH, NORMALIZATION)
    benchmark.group = f"fig4-{dataset}-eps{epsilon:g}"
    matches = benchmark(run_workload, engine, workload, epsilon)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["windows"] = engine.source.count
    benchmark.extra_info["queries"] = len(workload)
