"""Chaos benchmark: kill-and-recover loops, fault storms, and the
disarmed-failpoint overhead gate.

The ``repro.faults`` acceptance record. Three sections drive the *real*
serving stack through injected failures and assert the recovery
contract; a fourth proves that the failpoint instrumentation is free
when disarmed:

* ``kill_recover`` — repeated simulated kills (torn WAL writes, crashes
  mid-seal / mid-manifest-commit / mid-segment-write / mid-compaction)
  against one durable :class:`~repro.live.LiveTwinIndex` under bursty
  ingest with concurrent queries; after every kill the plane is
  recovered from disk and checked byte-exactly against a from-scratch
  oracle. ``exactness_violations`` must be 0.
* ``storms`` — probabilistic ENOSPC / torn-write / I/O fault storms on
  the WAL and the query fan-out; the plane must stay serviceable and
  exact, and query p50/p99 under fault load is recorded.
* ``overhead`` — the hot single-query path with the failpoint sites
  *disarmed* (production state) vs the same modules with the failpoint
  call rebound to a no-op. Paired interleaved best-of timing, same
  plane, cache off — the same method as ``bench_obs_overhead.py``. The
  gate: **at most 1%**.

Run standalone::

    python benchmarks/bench_chaos.py            # full scale
    python benchmarks/bench_chaos.py --smoke    # CI-sized
"""

import argparse
import os
import shutil
import sys
import tempfile

import numpy as np

#: The acceptance gate on disarmed-failpoint overhead, percent.
OVERHEAD_GATE_PCT = 1.0


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Chaos-test the serving stack and record "
        "BENCH_chaos.json."
    )
    parser.add_argument(
        "--loops", type=int, default=30,
        help="kill-and-recover incidents (default: 30)",
    )
    parser.add_argument(
        "--storm-appends", type=int, default=300,
        help="appends per fault storm (default: 300)",
    )
    parser.add_argument(
        "--storm-queries", type=int, default=200,
        help="queries per fault storm (default: 200)",
    )
    parser.add_argument(
        "--windows", type=int, default=100_000,
        help="indexed window count for the overhead gate (default: 100000)",
    )
    parser.add_argument(
        "--length", type=int, default=100, help="window length (default: 100)"
    )
    parser.add_argument(
        "--queries", type=int, default=64,
        help="overhead workload size (default: 64)",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the overhead plane (default: 4)",
    )
    parser.add_argument(
        "--repeats", type=int, default=7,
        help="interleaved timing repetitions; best is kept (default: 7)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", default="BENCH_chaos.json",
        help="JSON results path (default: BENCH_chaos.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI smoke runs (overrides the scale flags)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.loops = 6
        args.storm_appends = 60
        args.storm_queries = 40
        args.windows = 4_000
        args.queries = 12
        args.shards = 2
        args.repeats = 3
    return args


def main(argv=None) -> int:
    import repro._util as _util
    import repro.engine.sharding as sharding
    import repro.live.index as live_index
    from repro._util import available_cpu_count
    from repro.bench.record import write_artifact
    from repro.bench.timing import paired_best
    from repro.core.windows import WindowSource
    from repro.data import synthetic
    from repro.engine import QueryEngine, ShardedTSIndex
    from repro.faults import chaos, failpoints

    args = parse_args(argv)
    failpoints.reset()  # the overhead gate measures the disarmed state
    workdir = tempfile.mkdtemp(prefix="bench_chaos_")
    results = {
        "config": {
            "loops": args.loops,
            "storm_appends": args.storm_appends,
            "storm_queries": args.storm_queries,
            "windows": args.windows,
            "length": args.length,
            "queries": args.queries,
            "shards": args.shards,
            "repeats": args.repeats,
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "cpu_count": available_cpu_count(),
            "overhead_gate_pct": OVERHEAD_GATE_PCT,
        },
    }
    try:
        # --- kill-and-recover loops -----------------------------------
        print(f"kill-and-recover: {args.loops} incidents ...")
        results["kill_recover"] = chaos.run_kill_recover(
            os.path.join(workdir, "kill_recover"),
            loops=args.loops,
            seed=args.seed,
        )
        kr = results["kill_recover"]
        print(
            f"  {kr['crashes']} crashes over {kr['loops']} loops "
            f"({kr['final_readings']} readings survive), "
            f"violations={kr['exactness_violations']}, "
            f"recovery mean {1e3 * (kr['recovery_seconds']['mean'] or 0):.1f}ms"
        )

        # --- fault storms ---------------------------------------------
        results["storms"] = {}
        for mode in ("enospc", "io", "search"):
            storm = chaos.run_storm(
                os.path.join(workdir, f"storm_{mode}"),
                mode=mode,
                appends=args.storm_appends,
                queries=args.storm_queries,
                seed=args.seed,
            )
            results["storms"][mode] = storm
            p99 = storm["query_seconds"]["p99"]
            print(
                f"storm[{mode}]: {storm['append_failures']} append / "
                f"{storm['query_failures']} query faults survived, "
                f"violations={storm['exactness_violations']}, "
                f"serviceable={storm['serviceable_after_storm']}, "
                f"query p99 {1e3 * p99:.2f}ms" if p99 is not None else
                f"storm[{mode}]: no successful queries"
            )

        # --- disarmed-failpoint overhead gate -------------------------
        print(f"overhead: building plane over {args.windows} windows ...")
        series = synthetic.insect_like(
            args.windows + args.length - 1, seed=args.seed
        )
        source = WindowSource(series, args.length, "global")
        sharded = ShardedTSIndex.from_source(source, shards=args.shards)
        rng = np.random.default_rng(args.seed)
        positions = rng.integers(0, source.count, size=args.queries)
        queries = [
            np.array(source.window_block(int(p), int(p) + 1)[0])
            for p in positions
        ]
        kth = []
        for query, position in zip(queries[:8], positions[:8]):
            zone = (max(0, int(position) - args.length),
                    int(position) + args.length)
            ranked = sharded.knn(query, 10, exclude=zone)
            if len(ranked):
                kth.append(float(ranked.distances[-1]))
        epsilon = float(np.median(kth)) if kth else 0.5
        workers = min(32, available_cpu_count() + 4)
        engine = QueryEngine(metrics=False, trace_sample=0.0,
                             max_workers=workers)
        engine.add("plane", sharded)

        # Baseline side: the failpoint call rebound to a no-op in every
        # module the single-query path goes through; enabled side: the
        # real (disarmed) failpoint. The rebind happens off the clock.
        real = failpoints.failpoint
        noop = lambda name, **context: None  # noqa: E731
        patched = (sharding, _util, live_index)

        def bind(fn):
            for module in patched:
                module.failpoint = fn

        def workload():
            for query in queries:
                engine.query("plane", query, epsilon, use_cache=False)

        try:
            noop_s, real_s = paired_best(
                args.repeats,
                lambda: bind(noop), workload,
                lambda: bind(real), workload,
            )
        finally:
            bind(real)
        overhead = 100.0 * (real_s - noop_s) / noop_s
        results["overhead"] = {
            "noop_ms_per_query": round(1e3 * noop_s / len(queries), 4),
            "disarmed_ms_per_query": round(1e3 * real_s / len(queries), 4),
            "overhead_pct": round(overhead, 2),
        }
        print(
            f"overhead: no-op {results['overhead']['noop_ms_per_query']}"
            f"ms/query, disarmed "
            f"{results['overhead']['disarmed_ms_per_query']}ms/query "
            f"({overhead:+.2f}%)"
        )
        engine.close()

        violations = (
            results["kill_recover"]["exactness_violations"]
            + sum(s["exactness_violations"]
                  for s in results["storms"].values())
        )
        serviceable = all(
            s["serviceable_after_storm"] for s in results["storms"].values()
        )
        results["gate"] = {
            "exactness_violations": violations,
            "serviceable_after_storms": serviceable,
            "overhead_pct": results["overhead"]["overhead_pct"],
            "limit_pct": OVERHEAD_GATE_PCT,
            "passed": bool(
                violations == 0
                and serviceable
                and results["overhead"]["overhead_pct"] <= OVERHEAD_GATE_PCT
            ),
        }
        print(
            f"gate: violations={violations}, serviceable={serviceable}, "
            f"disarmed overhead {results['overhead']['overhead_pct']:+.2f}% "
            f"(limit {OVERHEAD_GATE_PCT}%) -> "
            f"{'PASS' if results['gate']['passed'] else 'FAIL'}"
        )
    finally:
        failpoints.reset()
        shutil.rmtree(workdir, ignore_errors=True)

    write_artifact(args.output, results, kind="chaos", seed=args.seed)
    print(f"wrote {args.output}")
    # Smoke runs are too noisy to gate the overhead on; exactness and
    # serviceability still gate (they are timing-independent).
    if args.smoke:
        return 0 if (
            results["gate"]["exactness_violations"] == 0
            and results["gate"]["serviceable_after_storms"]
        ) else 1
    return 0 if results["gate"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
