"""Variable-length query serving: native prefix kernels vs the scan.

Measures, per plane, the three ways a query of length ``m < l`` can be
answered:

* **native** — the plane's own prefix kernel (``search_varlength``:
  prefix-envelope traversal + block-bounded verification + tail scan)
  on the tree, frozen, sharded and live planes;
* **synthesized** — the planner's brute-force prefix scan
  (:func:`repro.query.scan_prefix_search`), which is also what the
  search-only baselines (sweepline) serve — the filtering win of the
  native kernels is ``synthesized / native``;
* **full-length** — the plane's fixed-length ``search`` with the
  ``l``-length query the prefix was cut from, as the latency anchor
  (what serving the same pattern cost before this capability).

Every configuration is sanity-checked for exact result equality (the
native answer must equal the prefix scan, positions and distances)
before timing. Results are written as JSON — ``BENCH_varlength.json``
by default; CI runs ``--smoke`` and uploads the artifact.

Run::

    python benchmarks/bench_varlength.py              # full: 100k windows
    python benchmarks/bench_varlength.py --smoke      # CI-sized
    python benchmarks/bench_varlength.py --windows 50000 --queries 32
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro._util import available_cpu_count
from repro.bench.record import write_artifact
from repro.core.tsindex import TSIndex
from repro.data import synthetic
from repro.engine import ShardedTSIndex
from repro.indices import create_method
from repro.live import LiveTwinIndex
from repro.query import scan_prefix_search


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Benchmark variable-length twin query serving."
    )
    parser.add_argument(
        "--windows", type=int, default=100_000,
        help="indexed window count (default: 100000)",
    )
    parser.add_argument(
        "--length", type=int, default=100, help="window length (default: 100)"
    )
    parser.add_argument(
        "--queries", type=int, default=48,
        help="workload size per query length (default: 48)",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the sharded plane (default: 4)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions; best is kept (default: 3)",
    )
    parser.add_argument(
        "--neighbors", type=int, default=10,
        help="epsilon = median k-th nearest-neighbour distance of the "
        "full-length queries (default: 10)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", default="BENCH_varlength.json",
        help="JSON results path (default: BENCH_varlength.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI smoke runs (overrides --windows/--queries)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.windows = min(args.windows, 4_000)
        args.queries = min(args.queries, 8)
        args.repeats = 1
    return args


def pick_epsilon(values, queries, length, neighbors) -> float:
    """Median k-th nearest prefix distance — a few twins per query."""
    windows = np.lib.stride_tricks.sliding_window_view(values, length)
    kths = []
    for query in queries:
        distances = np.max(np.abs(windows - query), axis=1)
        kths.append(np.partition(distances, neighbors)[neighbors])
    return float(np.median(kths))


def time_best(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    series = synthetic.insect_like(
        args.windows + args.length - 1, seed=args.seed
    )

    print(f"building planes over {args.windows} windows "
          f"(l={args.length}) ...", flush=True)
    tree = TSIndex.build(series, args.length, normalization="none")
    planes = {
        "tsindex": tree,
        "frozen": tree.freeze(),
        "sharded": ShardedTSIndex.build(
            series, args.length, normalization="none", shards=args.shards
        ),
        "sweepline": create_method(
            "sweepline", series, args.length, normalization="none"
        ),
    }
    live = LiveTwinIndex(
        series, args.length, seal_threshold=max(1024, args.windows // 8),
        background_compaction=False,
    )
    planes["live"] = live

    values = tree.source.values
    starts = rng.integers(0, args.windows, size=args.queries)
    full_queries = [np.array(values[s : s + args.length]) for s in starts]
    epsilon = pick_epsilon(
        values, full_queries, args.length, args.neighbors
    )
    print(f"epsilon = {epsilon:.4f} "
          f"(~{args.neighbors} twins per full-length query)")

    ratios = (0.25, 0.5, 0.75)
    results = {
        "config": {
            "windows": args.windows,
            "length": args.length,
            "queries": args.queries,
            "shards": args.shards,
            "repeats": args.repeats,
            "epsilon": epsilon,
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "cpus": available_cpu_count(),
        },
        "planes": {},
    }

    try:
        for name, plane in planes.items():
            rows = {}
            full_seconds = time_best(
                lambda: [plane.search(q, epsilon) for q in full_queries],
                args.repeats,
            )
            rows["full_length_ms_per_query"] = round(
                1e3 * full_seconds / args.queries, 4
            )
            for ratio in ratios:
                m = max(2, int(args.length * ratio))
                prefixes = [np.array(q[:m]) for q in full_queries]
                # Exactness gate: native answer == the prefix scan.
                native = plane.search_varlength(prefixes[0], epsilon)
                oracle = scan_prefix_search(
                    plane.source, prefixes[0], epsilon
                )
                assert np.array_equal(
                    native.positions, oracle.positions
                ), name
                assert np.array_equal(
                    native.distances, oracle.distances
                ), name

                native_seconds = time_best(
                    lambda: [
                        plane.search_varlength(q, epsilon)
                        for q in prefixes
                    ],
                    args.repeats,
                )
                scan_seconds = time_best(
                    lambda: [
                        scan_prefix_search(plane.source, q, epsilon)
                        for q in prefixes
                    ],
                    args.repeats,
                )
                rows[f"m={m}"] = {
                    "native_ms_per_query": round(
                        1e3 * native_seconds / args.queries, 4
                    ),
                    "scan_ms_per_query": round(
                        1e3 * scan_seconds / args.queries, 4
                    ),
                    "scan_over_native": round(
                        scan_seconds / native_seconds, 2
                    ),
                }
            results["planes"][name] = rows
            print(f"  {name:10s} "
                  + "  ".join(
                      f"m={key.split('=')[1]}: "
                      f"{row['native_ms_per_query']:.2f}ms "
                      f"(scan {row['scan_over_native']}x)"
                      for key, row in rows.items()
                      if key.startswith("m=")
                  ))
    finally:
        live.close()

    write_artifact(args.output, results, kind="varlength", seed=args.seed)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
