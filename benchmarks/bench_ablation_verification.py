"""Ablation: verification strategy (the reproduction's cost model).

The harness reproduces the paper's figures under ``per_candidate``
verification (each candidate fetched individually, as the paper reads
candidates from disk by random access). This ablation quantifies how
much the pure-NumPy ``bulk`` verifier changes the picture — the
reproduction's main deviation finding (see EXPERIMENTS.md): bulk
verification compresses the gap between filter-quality tiers because
verifying a candidate costs nanoseconds instead of microseconds.
"""

import pytest

from repro.bench.experiments import ALL_METHODS, DEFAULT_LENGTH
from repro.core.verification import VERIFICATION_MODES

from conftest import default_epsilon, get_method, get_workload

DATASET = "insect"
NORMALIZATION = "global"


def _run(engine, workload, epsilon, mode):
    total = 0
    for query in workload:
        total += len(engine.search(query, epsilon, verification=mode))
    return total


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("mode", VERIFICATION_MODES)
@pytest.mark.parametrize("method", ALL_METHODS)
def test_ablation_verification_mode(benchmark, method, mode):
    engine = get_method(DATASET, method, DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    benchmark.group = f"ablation-verification-{method}"
    matches = benchmark(_run, engine, workload, epsilon, mode)
    benchmark.extra_info["matches"] = matches


@pytest.mark.parametrize("method", ALL_METHODS)
def test_verification_modes_agree(method):
    """All strategies return identical twins (correctness gate)."""
    engine = get_method(DATASET, method, DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    counts = {
        mode: _run(engine, workload, epsilon, mode)
        for mode in VERIFICATION_MODES
    }
    assert len(set(counts.values())) == 1, counts
