"""Figure 7 — query time vs ε on raw (non-normalized) values.

Table 1's raw ε grids are re-expressed as the same fraction of the
surrogate's value range (DESIGN.md §4); iSAX uses empirical breakpoints
per the paper's "adjusting the breakpoints" note.
"""

import pytest

from repro.bench.experiments import ALL_METHODS, DEFAULT_LENGTH

from conftest import epsilon_grid, get_method, get_workload, run_workload

DATASETS = ("insect", "eeg")
NORMALIZATION = "none"


def _cases():
    cases = []
    for dataset in DATASETS:
        for epsilon in epsilon_grid(dataset, NORMALIZATION):
            for method in ALL_METHODS:
                cases.append(
                    pytest.param(
                        dataset,
                        method,
                        epsilon,
                        id=f"{dataset}-{method}-eps{epsilon:g}",
                    )
                )
    return cases


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("dataset,method,epsilon", _cases())
def test_fig7_query_time(benchmark, dataset, method, epsilon):
    engine = get_method(dataset, method, DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(dataset, DEFAULT_LENGTH, NORMALIZATION)
    benchmark.group = f"fig7-{dataset}-eps{epsilon:g}"
    matches = benchmark(run_workload, engine, workload, epsilon)
    benchmark.extra_info["matches"] = matches
