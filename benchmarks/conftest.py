"""Shared state for the benchmark suites.

Index construction dominates benchmark cost, so built methods are cached
per (dataset, method, length, regime) in module scope and shared by all
bench files. Scales are chosen so the full suite runs in minutes while
preserving every figure's shape (method orderings); the CLI harness runs
the larger record-keeping configuration (see EXPERIMENTS.md).
"""

from __future__ import annotations

import functools

from repro.bench.experiments import ExperimentContext

#: Benchmark-time dataset scales (fractions of the paper lengths).
SCALES = {"insect": 0.25, "eeg": 0.03}

#: Queries per timed batch (the paper uses 100; benches time a batch of
#: 5 and report per-query averages via pytest-benchmark statistics).
QUERY_COUNT = 5

#: The paper's cost model: candidates verified one by one (Section 6.1
#: stores the series on disk and fetches each candidate individually).
VERIFICATION = "per_candidate"


@functools.lru_cache(maxsize=None)
def get_context(dataset: str) -> ExperimentContext:
    """One cached context per dataset at benchmark scale."""
    return ExperimentContext(
        dataset=dataset, scale=SCALES[dataset], query_count=QUERY_COUNT
    )


@functools.lru_cache(maxsize=None)
def get_method(dataset: str, method: str, length: int, normalization: str):
    """Cached built method."""
    return get_context(dataset).method(method, length, normalization)


@functools.lru_cache(maxsize=None)
def get_workload(dataset: str, length: int, normalization: str):
    """Cached query workload in the method's value domain."""
    return get_context(dataset).workload(length, normalization)


def run_workload(method, workload, epsilon: float) -> int:
    """The timed unit: answer every workload query; returns matches."""
    total = 0
    for query in workload:
        total += len(method.search(query, epsilon, verification=VERIFICATION))
    return total


def epsilon_grid(dataset: str, normalization: str):
    """Table 1's ε grid (re-scaled for raw values on surrogates)."""
    return get_context(dataset).epsilons(normalization)


def default_epsilon(dataset: str, normalization: str) -> float:
    """Table 1's bold default ε."""
    return get_context(dataset).default_epsilon(normalization)
