"""Figure 6 — query time vs ε with per-subsequence z-normalization.

KV-Index is inapplicable here (all window means are zero, Section 4.1),
so the paper compares only TS-Index and iSAX. The benchmark asserts the
inapplicability as part of regenerating the figure's setting.
"""

import pytest

from repro.bench.experiments import ZNORM_SUBSEQ_METHODS, DEFAULT_LENGTH
from repro.exceptions import UnsupportedNormalizationError
from repro.indices.kvindex import KVIndex

from conftest import epsilon_grid, get_context, get_method, get_workload, run_workload

DATASETS = ("insect", "eeg")
NORMALIZATION = "per_window"


def _cases():
    cases = []
    for dataset in DATASETS:
        for epsilon in epsilon_grid(dataset, NORMALIZATION):
            for method in ZNORM_SUBSEQ_METHODS:
                cases.append(
                    pytest.param(
                        dataset,
                        method,
                        epsilon,
                        id=f"{dataset}-{method}-eps{epsilon:g}",
                    )
                )
    return cases


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6_kvindex_inapplicable(dataset):
    """Section 4.1: the KV mean filter degenerates under this regime."""
    context = get_context(dataset)
    with pytest.raises(UnsupportedNormalizationError):
        KVIndex.from_source(context.source(DEFAULT_LENGTH, NORMALIZATION))


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("dataset,method,epsilon", _cases())
def test_fig6_query_time(benchmark, dataset, method, epsilon):
    engine = get_method(dataset, method, DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(dataset, DEFAULT_LENGTH, NORMALIZATION)
    benchmark.group = f"fig6-{dataset}-eps{epsilon:g}"
    matches = benchmark(run_workload, engine, workload, epsilon)
    benchmark.extra_info["matches"] = matches
