"""Multi-core scaling of shard fan-out: thread pool vs process pool.

Measures one fixed twin-search workload against a raw-archived sharded
engine while sweeping the fan-out worker count over both executor
kinds:

* **thread** — the in-process pool (shares the GIL; concurrency comes
  from NumPy kernels releasing it);
* **process** — :class:`concurrent.futures.ProcessPoolExecutor`
  workers that reopen the archive by path and mmap its arrays (no GIL,
  no per-query data transfer; the only per-call traffic is the
  prepared query and the result).

Every (executor, workers) point is gated on byte-identical results —
positions, distances, and structural query stats — against the serial
in-process walk before it is timed. Results are written as JSON
(``BENCH_scaling.json`` by default) so the scaling trajectory is
recorded per change; CI runs ``--smoke`` on both executors and uploads
the artifact.

Run::

    python benchmarks/bench_scaling.py             # full: 100k windows
    python benchmarks/bench_scaling.py --smoke     # CI-sized
    python benchmarks/bench_scaling.py --workers 1 2 4 8
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro._util import available_cpu_count
from repro.bench.record import write_artifact
from repro.data import synthetic
from repro.engine import ShardedTSIndex
from repro.persistence import load_index, save_index


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Benchmark thread vs process shard fan-out scaling."
    )
    parser.add_argument(
        "--windows", type=int, default=100_000,
        help="indexed window count (default: 100000)",
    )
    parser.add_argument(
        "--length", type=int, default=100, help="window length (default: 100)"
    )
    parser.add_argument(
        "--queries", type=int, default=48,
        help="workload size (default: 48)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: max of 4 and the largest worker "
        "count, so every worker has a shard to chew on)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=None,
        help="worker counts to sweep (default: 1 2 4 ... up to the "
        "CPUs this process may run on)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions; best is kept (default: 3)",
    )
    parser.add_argument(
        "--neighbors", type=int, default=10,
        help="epsilon = median k-th nearest-neighbour distance of the "
        "queries (default: 10)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", default="BENCH_scaling.json",
        help="JSON results path (default: BENCH_scaling.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI smoke runs (overrides --windows/--queries)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.windows = 4_000
        args.queries = 8
        args.repeats = 1
        if args.workers is None:
            args.workers = [1, 2]
    if args.workers is None:
        cpus = available_cpu_count()
        args.workers = sorted(
            {1, 2, 4, 8, 16, cpus} & set(range(1, cpus + 1))
        ) or [1]
    if args.shards is None:
        args.shards = max(4, max(args.workers))
    return args


def _best_of(repeats: int, run) -> float:
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _pick_epsilon(engine, queries, positions, length, neighbors: int) -> float:
    kth = []
    for query, position in zip(queries[:8], positions[:8]):
        zone = (max(0, int(position) - length), int(position) + length)
        ranked = engine.knn(query, neighbors, exclude=zone)
        if len(ranked):
            kth.append(float(ranked.distances[-1]))
    return float(np.median(kth)) if kth else 0.5


def _run_workload(engine, queries, epsilon, executor=None) -> list:
    return [
        engine.search(query, epsilon, executor=executor)
        for query in queries
    ]


def _assert_identical(baseline, results, label: str) -> None:
    for want, got in zip(baseline, results):
        if not (
            np.array_equal(want.positions, got.positions)
            and np.array_equal(want.distances, got.distances)
            and want.stats == got.stats
        ):
            raise AssertionError(f"{label}: results diverge from serial")


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    series = synthetic.insect_like(
        args.windows + args.length - 1, seed=args.seed
    )

    print(
        f"building {args.shards}-shard engine over ~{args.windows} windows..."
    )
    built = ShardedTSIndex.build(
        series, args.length, normalization="global", shards=args.shards
    )
    scratch = tempfile.mkdtemp(prefix="bench-scaling-")
    try:
        archive = os.path.join(scratch, "engine.raw")
        save_index(built, archive, format="raw")
        engine = load_index(archive)  # archive attached: process-servable

        source = engine.source
        positions = rng.integers(0, source.count, size=args.queries)
        queries = [
            np.array(source.window_block(int(p), int(p) + 1)[0])
            for p in positions
        ]
        epsilon = _pick_epsilon(
            engine, queries, positions, args.length, args.neighbors
        )
        print(f"workload: {len(queries)} queries, epsilon={epsilon:.4f}")

        serial_results = _run_workload(engine, queries, epsilon)
        serial_seconds = _best_of(
            args.repeats, lambda: _run_workload(engine, queries, epsilon)
        )
        print(
            f"serial: {1e3 * serial_seconds / len(queries):.2f}ms/q "
            f"({len(queries) / serial_seconds:.1f} qps)"
        )

        curve = []
        pools = {
            "thread": concurrent.futures.ThreadPoolExecutor,
            "process": concurrent.futures.ProcessPoolExecutor,
        }
        for executor_kind, make_pool in pools.items():
            for workers in args.workers:
                with make_pool(max_workers=workers) as pool:
                    # Warm-up run: fork + archive open for process
                    # workers, thread spin-up for the thread pool —
                    # and the equality gate in the same pass.
                    _assert_identical(
                        serial_results,
                        _run_workload(engine, queries, epsilon, pool),
                        f"{executor_kind}x{workers}",
                    )
                    seconds = _best_of(
                        args.repeats,
                        lambda: _run_workload(engine, queries, epsilon, pool),
                    )
                row = {
                    "executor": executor_kind,
                    "workers": workers,
                    "seconds": round(seconds, 4),
                    "ms_per_query": round(1e3 * seconds / len(queries), 4),
                    "qps": round(len(queries) / seconds, 1),
                    "speedup_vs_serial": round(serial_seconds / seconds, 2),
                }
                curve.append(row)
                print(
                    f"{executor_kind} x{workers}: {row['ms_per_query']}ms/q "
                    f"({row['speedup_vs_serial']}x vs serial)"
                )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    results = {
        "config": {
            "windows": source.count,
            "length": args.length,
            "queries": len(queries),
            "shards": args.shards,
            "epsilon": epsilon,
            "repeats": args.repeats,
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "cpu_count": available_cpu_count(),
        },
        "serial": {
            "seconds": round(serial_seconds, 4),
            "ms_per_query": round(1e3 * serial_seconds / len(queries), 4),
            "qps": round(len(queries) / serial_seconds, 1),
        },
        "curve": curve,
    }
    write_artifact(args.output, results, kind="scaling", seed=args.seed)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
