"""Frozen vs pointer traversal: the numbers behind FrozenTSIndex.

Measures, on one synthetic workload over a sequentially-inserted
TS-Index (the production build path), the serving configurations the
frozen query plane targets:

* **single** — per-query ``search`` latency, pointer tree vs frozen
  flat arrays, both with the library's ``"bulk"`` verification
  (apples-to-apples: identical results, identical verification);
* **batch** — whole-workload throughput, a per-query pointer loop vs
  ``FrozenTSIndex.search_batch`` (all queries share one traversal and
  one batched verification sweep);
* **paper cost model** — the pointer tree with ``"per_candidate"``
  verification (the paper's disk-based cost model, the mode the
  benchmark harness uses to reproduce the figures) vs the frozen
  batched plane — the speedup a paper-style deployment gains;
* **engine** — end-to-end :class:`repro.engine.ShardedTSIndex` batch
  throughput with dynamic vs frozen shards.

Every configuration is sanity-checked for exact result equality before
timing. Results (latencies, throughputs, speedups, config, cpu count)
are written as JSON — ``BENCH_frozen.json`` by default — so the
performance trajectory of the index is recorded per change; CI runs
``--smoke`` and uploads the artifact.

Run::

    python benchmarks/bench_frozen_traversal.py                # full: 100k windows
    python benchmarks/bench_frozen_traversal.py --smoke        # CI-sized
    python benchmarks/bench_frozen_traversal.py --windows 50000 --queries 128
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro._util import available_cpu_count
from repro.bench.record import write_artifact
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.data import synthetic
from repro.engine import ShardedTSIndex


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Benchmark frozen vs pointer TS-Index traversal."
    )
    parser.add_argument(
        "--windows", type=int, default=100_000,
        help="indexed window count (default: 100000)",
    )
    parser.add_argument(
        "--length", type=int, default=100, help="window length (default: 100)"
    )
    parser.add_argument(
        "--queries", type=int, default=64,
        help="workload size (default: 64)",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the engine stage (default: 4)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions; best is kept (default: 3)",
    )
    parser.add_argument(
        "--neighbors", type=int, default=10,
        help="epsilon = median k-th nearest-neighbour distance of the "
        "queries (default: 10 — about that many twins per query)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", default="BENCH_frozen.json",
        help="JSON results path (default: BENCH_frozen.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI smoke runs (overrides --windows/--queries)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.windows = 4_000
        args.queries = 12
        args.shards = 2
        args.repeats = 1
    return args


def _best_of(repeats: int, run) -> float:
    """Best wall-clock seconds of ``repeats`` runs of ``run()``."""
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _pick_epsilon(frozen, queries, positions, length, neighbors: int) -> float:
    """A threshold with twin-search-like selectivity: the median k-th
    nearest-neighbour distance of a few queries (their own overlapping
    windows excluded), so each query has about ``neighbors`` twins."""
    kth = []
    for query, position in zip(queries[:8], positions[:8]):
        zone = (max(0, int(position) - length), int(position) + length)
        ranked = frozen.knn(query, neighbors, exclude=zone)
        if len(ranked):
            kth.append(float(ranked.distances[-1]))
    return float(np.median(kth)) if kth else 0.5


def _assert_equal(a, b, label: str) -> None:
    if not (
        np.array_equal(a.positions, b.positions)
        and np.array_equal(a.distances, b.distances)
    ):
        raise AssertionError(f"{label}: frozen != pointer")


def main(argv=None) -> int:
    args = parse_args(argv)
    rng = np.random.default_rng(args.seed)
    series = synthetic.insect_like(
        args.windows + args.length - 1, seed=args.seed
    )
    source = WindowSource(series, args.length, "global")
    params = TSIndexParams()

    print(f"building pointer tree over {source.count} windows "
          "(sequential insertion, the production path) ...")
    started = time.perf_counter()
    pointer = TSIndex.from_source(source, params=params)
    build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    frozen = pointer.freeze()
    freeze_seconds = time.perf_counter() - started
    print(
        f"  built in {build_seconds:.2f}s, frozen in {freeze_seconds:.3f}s "
        f"({frozen.node_count} nodes, height {frozen.height})"
    )

    positions = rng.integers(0, source.count, size=args.queries)
    queries = [
        np.array(source.window_block(int(p), int(p) + 1)[0])
        for p in positions
    ]
    epsilon = _pick_epsilon(
        frozen, queries, positions, args.length, args.neighbors
    )
    print(f"workload: {len(queries)} queries, epsilon={epsilon:.4f}")

    # --- correctness gate ---------------------------------------------
    batch = frozen.search_batch(queries, epsilon)
    for query, result in zip(queries, batch.results):
        _assert_equal(result, pointer.search(query, epsilon), "batch")
    total_matches = batch.total_matches
    total_candidates = batch.stats.candidates
    print(
        f"equality checks passed ({total_matches} twins, "
        f"{total_candidates} candidates in the workload)"
    )

    results = {
        "config": {
            "windows": source.count,
            "length": args.length,
            "queries": len(queries),
            "shards": args.shards,
            "epsilon": epsilon,
            "epsilon_neighbors": args.neighbors,
            "repeats": args.repeats,
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "cpu_count": available_cpu_count(),
        },
        "build": {
            "pointer_build_seconds": round(build_seconds, 4),
            "freeze_seconds": round(freeze_seconds, 4),
            "nodes": frozen.node_count,
            "height": frozen.height,
            "total_matches": total_matches,
            "total_candidates": total_candidates,
        },
    }

    def record(name: str, pointer_seconds: float, frozen_seconds: float):
        row = {
            "pointer_ms_per_query": round(
                1e3 * pointer_seconds / len(queries), 4
            ),
            "frozen_ms_per_query": round(
                1e3 * frozen_seconds / len(queries), 4
            ),
            "pointer_qps": round(len(queries) / pointer_seconds, 1),
            "frozen_qps": round(len(queries) / frozen_seconds, 1),
            "speedup": round(pointer_seconds / frozen_seconds, 2),
        }
        results[name] = row
        print(
            f"{name}: pointer {row['pointer_ms_per_query']}ms/q, frozen "
            f"{row['frozen_ms_per_query']}ms/q ({row['speedup']}x)"
        )

    # --- single-query latency (identical bulk verification) -----------
    pointer_loop_seconds = _best_of(args.repeats, lambda: [
        pointer.search(query, epsilon) for query in queries
    ])
    record(
        "single_query",
        pointer_loop_seconds,
        _best_of(args.repeats, lambda: [
            frozen.search(query, epsilon) for query in queries
        ]),
    )

    # --- batched throughput (same pointer measurement as baseline) ----
    frozen_batch_seconds = _best_of(
        args.repeats, lambda: frozen.search_batch(queries, epsilon)
    )
    record("batch", pointer_loop_seconds, frozen_batch_seconds)

    # --- the paper's cost model as the baseline ------------------------
    # The benchmark harness reproduces the paper's figures with
    # per-candidate verification (each candidate fetched and checked
    # individually, as the paper's disk-resident setup did); this row is
    # what the frozen batched plane buys over that deployment style.
    record(
        "batch_vs_paper_cost_model",
        _best_of(args.repeats, lambda: [
            pointer.search(query, epsilon, verification="per_candidate")
            for query in queries
        ]),
        frozen_batch_seconds,
    )

    # --- engine end-to-end (sharded serving path) ----------------------
    sharded_pointer = ShardedTSIndex.from_source(
        source, shards=args.shards, params=params, frozen=False
    )
    sharded_frozen = sharded_pointer.freeze()
    query = queries[0]
    _assert_equal(
        sharded_frozen.search(query, epsilon),
        sharded_pointer.search(query, epsilon),
        "engine",
    )
    record(
        "engine_batch",
        _best_of(
            args.repeats,
            lambda: sharded_pointer.search_batch(queries, epsilon),
        ),
        _best_of(
            args.repeats,
            lambda: sharded_frozen.search_batch(queries, epsilon),
        ),
    )

    # --- cold start: archive open latency, compressed vs raw mmap ------
    # The raw container's whole point: load_index on a raw directory
    # maps the arrays instead of decompressing and copying them, so a
    # process cold start is O(metadata) regardless of index size.
    import shutil
    import tempfile

    from repro.persistence import load_index, save_index

    scratch = tempfile.mkdtemp(prefix="bench-frozen-")
    try:
        npz_path = os.path.join(scratch, "frozen.npz")
        raw_path = os.path.join(scratch, "frozen.raw")
        started = time.perf_counter()
        save_index(frozen, npz_path)
        npz_save_seconds = time.perf_counter() - started
        started = time.perf_counter()
        save_index(frozen, raw_path, format="raw")
        raw_save_seconds = time.perf_counter() - started
        _assert_equal(
            load_index(raw_path).search(query, epsilon),
            frozen.search(query, epsilon),
            "cold_start",
        )
        npz_load_seconds = _best_of(
            args.repeats, lambda: load_index(npz_path)
        )
        raw_load_seconds = _best_of(
            args.repeats, lambda: load_index(raw_path)
        )
        raw_bytes = sum(
            entry.stat().st_size for entry in os.scandir(raw_path)
        )
        results["cold_start"] = {
            "npz_bytes": os.path.getsize(npz_path),
            "raw_bytes": raw_bytes,
            "npz_save_seconds": round(npz_save_seconds, 4),
            "raw_save_seconds": round(raw_save_seconds, 4),
            "npz_load_seconds": round(npz_load_seconds, 4),
            "raw_load_seconds": round(raw_load_seconds, 4),
            "load_speedup": round(npz_load_seconds / raw_load_seconds, 1),
        }
        print(
            f"cold_start: npz load {npz_load_seconds * 1e3:.1f}ms, raw "
            f"(mmap) load {raw_load_seconds * 1e3:.1f}ms "
            f"({results['cold_start']['load_speedup']}x)"
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    write_artifact(args.output, results, kind="frozen", seed=args.seed)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
