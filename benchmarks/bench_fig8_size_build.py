"""Figure 8 — (a) memory footprint and (b) build time per index.

Build benches run a single round (construction at these scales takes
seconds); the memory footprint of the already-built index is recorded
in ``extra_info`` alongside, regenerating both panels from one file.
"""

import pytest

from repro.bench.experiments import DEFAULT_LENGTH, INDEX_METHODS
from repro.bench.memory import index_memory_bytes
from repro.indices.base import create_method_from_source

from conftest import get_context, get_method

DATASETS = ("insect", "eeg")
NORMALIZATION = "global"


def _cases():
    return [
        pytest.param(dataset, method, id=f"{dataset}-{method}")
        for dataset in DATASETS
        for method in INDEX_METHODS
    ]


@pytest.mark.benchmark(min_rounds=1, max_time=1.0, warmup=False)
@pytest.mark.parametrize("dataset,method", _cases())
def test_fig8_build_time(benchmark, dataset, method):
    """Figure 8b: wall-clock construction per index."""
    context = get_context(dataset)
    source = context.source(DEFAULT_LENGTH, NORMALIZATION)
    benchmark.group = f"fig8b-build-{dataset}"

    built = benchmark.pedantic(
        create_method_from_source, args=(method, source), rounds=1, iterations=1
    )
    benchmark.extra_info["windows"] = source.count
    benchmark.extra_info["memory_mb"] = round(
        index_memory_bytes(built) / (1024.0 * 1024.0), 3
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig8_memory_ordering(dataset):
    """Figure 8a's shape: KV-Index < iSAX < TS-Index in memory."""
    footprints = {
        method: index_memory_bytes(
            get_method(dataset, method, DEFAULT_LENGTH, NORMALIZATION)
        )
        for method in INDEX_METHODS
    }
    assert footprints["kvindex"] < footprints["isax"] < footprints["tsindex"]
