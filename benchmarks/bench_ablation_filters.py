"""Ablations on the competitors' filter granularity.

* KV-Index ``num_bins`` — finer mean keys filter better at slightly
  more memory (the KV-Match key-range tuning knob);
* iSAX segment count ``m`` — Table 2's grid (5, 10, 20, 25, 50): more
  segments tighten the per-segment bound but deepen words.

Both record candidates via ``extra_info`` so filter quality (not just
wall-clock) is visible in the record.
"""

import pytest

from repro.bench.experiments import DEFAULT_LENGTH, TABLE2_SEGMENTS
from repro.indices.isax import ISAXIndex, ISAXParams
from repro.indices.kvindex import KVIndex, KVIndexParams

from conftest import default_epsilon, get_context, get_workload

DATASET = "insect"
NORMALIZATION = "global"

KV_BINS = (16, 64, 256, 1024)
_CACHE: dict = {}


def _source():
    return get_context(DATASET).source(DEFAULT_LENGTH, NORMALIZATION)


def _run_and_count(engine, workload, epsilon):
    matches = 0
    candidates = 0
    for query in workload:
        result = engine.search(query, epsilon, verification="per_candidate")
        matches += len(result)
        candidates += result.stats.candidates
    return matches, candidates


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("num_bins", KV_BINS)
def test_ablation_kv_bins(benchmark, num_bins):
    key = ("kv", num_bins)
    if key not in _CACHE:
        _CACHE[key] = KVIndex.from_source(
            _source(), params=KVIndexParams(num_bins=num_bins)
        )
    engine = _CACHE[key]
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    benchmark.group = "ablation-kv-bins"
    matches, candidates = benchmark(_run_and_count, engine, workload, epsilon)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["candidates"] = candidates
    benchmark.extra_info["intervals"] = engine.interval_count()


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("segments", TABLE2_SEGMENTS)
def test_ablation_isax_segments(benchmark, segments):
    key = ("isax", segments)
    if key not in _CACHE:
        _CACHE[key] = ISAXIndex.from_source(
            _source(), params=ISAXParams(segments=segments, leaf_capacity=1000)
        )
    engine = _CACHE[key]
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    benchmark.group = "ablation-isax-segments"
    matches, candidates = benchmark(_run_and_count, engine, workload, epsilon)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["candidates"] = candidates
    benchmark.extra_info["nodes"] = engine.node_count
