"""Benches for the extension features (not paper experiments).

* approximate vs exact search — the accuracy/latency trade of the
  budgeted best-first probe;
* variable-length queries vs full-length queries;
* streaming append throughput vs batch rebuild.
"""

import numpy as np
import pytest

from repro.bench.experiments import DEFAULT_LENGTH
from repro.core.tsindex import TSIndex
from repro.extensions.streaming import StreamingTwinIndex
from repro.extensions.varlength import search_variable_length

from conftest import default_epsilon, get_context, get_method, get_workload

DATASET = "insect"
NORMALIZATION = "global"


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("mode", ["exact", "approx-1", "approx-8"])
def test_extension_approximate_vs_exact(benchmark, mode):
    index = get_method(DATASET, "tsindex", DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    benchmark.group = "extension-approximate"

    def run():
        total = 0
        for query in workload:
            if mode == "exact":
                total += len(index.search(query, epsilon))
            else:
                budget = int(mode.split("-")[1])
                total += len(
                    index.search_approximate(query, epsilon, max_leaves=budget)
                )
        return total

    matches = benchmark(run)
    exact_total = sum(len(index.search(q, epsilon)) for q in workload)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["recall"] = round(matches / max(1, exact_total), 3)
    assert matches <= exact_total


@pytest.mark.benchmark(max_time=0.6, min_rounds=2, warmup=False)
@pytest.mark.parametrize("query_length", [25, 50, 100])
def test_extension_variable_length(benchmark, query_length):
    index = get_method(DATASET, "tsindex", DEFAULT_LENGTH, NORMALIZATION)
    workload = get_workload(DATASET, DEFAULT_LENGTH, NORMALIZATION)
    epsilon = default_epsilon(DATASET, NORMALIZATION)
    benchmark.group = "extension-varlength"

    def run():
        total = 0
        for query in workload.queries[:3]:
            total += len(
                search_variable_length(index, query[:query_length], epsilon)
            )
        return total

    matches = benchmark(run)
    benchmark.extra_info["matches"] = matches


@pytest.mark.benchmark(min_rounds=1, max_time=2.0, warmup=False)
def test_extension_streaming_append(benchmark):
    """Throughput of appending 1,000 readings one batch at a time."""
    context = get_context(DATASET)
    values = np.asarray(context.series)[:4000]
    extra = np.asarray(context.series)[4000:5000]
    benchmark.group = "extension-streaming"

    def run():
        stream = StreamingTwinIndex(values, DEFAULT_LENGTH)
        for start in range(0, extra.size, 100):
            stream.append(extra[start : start + 100])
        return stream.window_count

    windows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["windows"] = windows


@pytest.mark.benchmark(min_rounds=1, max_time=2.0, warmup=False)
def test_extension_batch_rebuild_baseline(benchmark):
    """The rebuild-from-scratch baseline for the streaming bench."""
    context = get_context(DATASET)
    values = np.asarray(context.series)[:5000]
    benchmark.group = "extension-streaming"
    built = benchmark.pedantic(
        TSIndex.build, args=(values, DEFAULT_LENGTH),
        kwargs={"normalization": "none"}, rounds=1, iterations=1,
    )
    benchmark.extra_info["windows"] = built.size
